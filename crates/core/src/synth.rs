//! The code-generation back end of SEPE (Section 3.2 of the paper).
//!
//! Synthesis turns a [`KeyPattern`] into a [`Plan`]: the exact sequence of
//! word loads, extraction masks and shifts that the emitted hash function
//! performs. The same plan drives both
//!
//! * the runtime-executable hash functions of [`crate::hash`], and
//! * the C++/Rust source emitters of [`crate::codegen`].
//!
//! Mirroring Figure 7 of the paper, synthesis proceeds as:
//!
//! 1. `parseRanges` — split the pattern into constant words and variable
//!    segments ([`KeyPattern::constant_runs`]);
//! 2. `ignoreConstantSubsequences` — choose the word loads, skipping
//!    constant words and overlapping the final load of each segment
//!    (Sections 3.2.1–3.2.2);
//! 3. `calculateMasks` / `removeConstBits` — compute a `pext` mask and a
//!    packing shift per load (Section 3.2.3);
//! 4. `unrollSequences` — fixed-length formats become straight-line plans;
//!    variable-length formats keep a skip-table prefix plus a word/byte tail
//!    loop (Figure 8).

use crate::pattern::KeyPattern;

/// The four synthesized hash families of the paper, in increasing order of
/// exploited constraints (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Xor of *all* key bytes, eight at a time, fully unrolled for
    /// fixed-length keys. Exploits only the length constraint.
    Naive,
    /// Like [`Family::Naive`] but loads only words containing variable
    /// bytes: constant subsequences are skipped (Section 3.2.1).
    OffXor,
    /// Like [`Family::OffXor`] but combines 16-byte blocks with an AES
    /// encode round instead of xor; slower, better distribution.
    Aes,
    /// Like [`Family::OffXor`] but additionally removes constant *bits*
    /// with parallel bit extraction and repacks the survivors across the
    /// 64-bit range (Section 3.2.3).
    Pext,
}

impl Family {
    /// All four families, in the paper's order.
    pub const ALL: [Family; 4] = [Family::Naive, Family::OffXor, Family::Aes, Family::Pext];

    /// The family name as used in the paper's tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Family::Naive => "Naive",
            Family::OffXor => "OffXor",
            Family::Aes => "Aes",
            Family::Pext => "Pext",
        }
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One eight-byte load plus its bit-extraction mask and packing shift.
///
/// For the Naive and OffXor families `mask` is all-ones and `shift` is a
/// *left-rotation* applied to the loaded word before xor-ing it in. It is
/// zero on every load except a clamped final load (one that re-reads bytes
/// an earlier load covered), which is rotated by [`OVERLAP_ROTATION`] to
/// break nibble alignment with the loads it overlaps — without the
/// rotation, every pair of positions read by two loads into the same
/// result lane forms an xor-cancellation kernel: two keys differing by the
/// same nibble flip at both positions collide, which is where the seed's
/// spurious Naive/OffXor T-Coll on small-space formats came from.
///
/// For Pext, `mask` selects the variable bits (excluding bytes already
/// covered by earlier loads, exactly as the `mk1` mask of Figure 12 does)
/// and `shift` packs the extracted bits towards the top of the 64-bit
/// range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WordOp {
    /// Byte offset of the load within the key.
    pub offset: u32,
    /// `pext` mask applied to the loaded word.
    pub mask: u64,
    /// Left shift applied to the extracted bits (Pext), or left rotation
    /// applied to the loaded word (Naive/OffXor).
    pub shift: u8,
}

/// Left rotation applied to a clamped Naive/OffXor load.
///
/// Half a byte: on byte formats whose per-byte variance lives in one nibble
/// (digits, lowercase hex), the rotation aligns the variable nibbles of the
/// overlapping load with the *constant* nibbles of the loads under it, so
/// no in-format key difference can cancel across the overlap. A whole-byte
/// rotation would merely re-pair the cancellation kernels.
pub const OVERLAP_ROTATION: u8 = 4;

/// The shape of a synthesized hash function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Plan {
    /// Fixed-length key, word-combining families (Naive, OffXor, Pext):
    /// a fully unrolled sequence of loads (Section 3.2.2, Figure 10/12).
    FixedWords {
        /// The fixed key length.
        len: usize,
        /// The unrolled loads.
        ops: Vec<WordOp>,
    },
    /// Fixed-length key, AES family: a sequence of 16-byte block loads.
    FixedBlocks {
        /// The fixed key length.
        len: usize,
        /// Block offsets. Empty means "replicate the whole (short) key
        /// into one block".
        offsets: Vec<u32>,
    },
    /// Variable-length key, word-combining families: a skip-table prefix
    /// over the mandatory region plus a word-then-byte tail loop
    /// (Section 3.2.1, Figure 8).
    VarWords {
        /// Length of the mandatory prefix all keys share.
        min_len: usize,
        /// Unrolled loads over the mandatory prefix.
        ops: Vec<WordOp>,
        /// First byte position the tail loop starts at.
        tail_start: usize,
    },
    /// Variable-length key, AES family.
    VarBlocks {
        /// Length of the mandatory prefix all keys share.
        min_len: usize,
        /// Block offsets over the mandatory prefix.
        offsets: Vec<u32>,
        /// First byte position the tail loop starts at.
        tail_start: usize,
    },
    /// Keys shorter than eight bytes: SEPE "defaults to the standard STL
    /// function" (footnote 5 of the paper).
    StlFallback,
}

impl Plan {
    /// Whether this plan fell back to the general-purpose STL hash.
    #[must_use]
    pub fn is_fallback(&self) -> bool {
        matches!(self, Plan::StlFallback)
    }

    /// When this is a fixed-length Pext plan whose extraction fields land
    /// in pairwise-disjoint bit ranges, the hash is a *bijection* from
    /// format keys to `total_bits`-bit integers (Section 4.2: "Pext always
    /// generates a bijection for key types that have equal or less than 64
    /// relevant bits"). Returns the number of significant bits, or `None`
    /// when the plan offers no bijection guarantee.
    #[must_use]
    pub fn bijection_bits(&self) -> Option<u32> {
        let Plan::FixedWords { ops, .. } = self else {
            return None;
        };
        if ops.is_empty() {
            return Some(0);
        }
        // Field i occupies bits [shift_i, shift_i + popcount(mask_i)).
        // Overlapping bytes are already excluded from later masks, so
        // distinct keys differ in at least one extracted field; disjoint
        // placement then keeps them distinct in the combined word.
        let mut fields: Vec<(u32, u32)> = ops
            .iter()
            .map(|op| (u32::from(op.shift), op.mask.count_ones()))
            .collect();
        fields.sort_unstable();
        let mut end = 0u32;
        for (start, bits) in fields {
            if start < end || start + bits > 64 {
                return None;
            }
            end = start + bits;
        }
        let total: u32 = ops.iter().map(|op| op.mask.count_ones()).sum();
        Some(total)
    }

    /// The word operations of the plan, if it is a word plan.
    #[must_use]
    pub fn word_ops(&self) -> Option<&[WordOp]> {
        match self {
            Plan::FixedWords { ops, .. } | Plan::VarWords { ops, .. } => Some(ops),
            _ => None,
        }
    }
}

/// Synthesizes a plan of the given family for a key format.
///
/// This is the `synthesize(key)` entry point of Figure 7. Formats whose
/// maximum length is below eight bytes yield [`Plan::StlFallback`].
///
/// # Examples
///
/// The SSN plan of Figure 12 — two overlapping loads with nibble masks:
///
/// ```
/// use sepe_core::regex::Regex;
/// use sepe_core::synth::{synthesize, Family, Plan};
///
/// let ssn = Regex::compile(r"\d{3}\.\d{2}\.\d{4}")?;
/// let plan = synthesize(&ssn, Family::Pext);
/// let Plan::FixedWords { len, ops } = plan else { panic!("fixed plan") };
/// assert_eq!(len, 11);
/// assert_eq!(ops.len(), 2);
/// assert_eq!(ops[0].offset, 0);
/// assert_eq!(ops[0].mask, 0x0F00_0F0F_000F_0F0F);
/// assert_eq!(ops[1].offset, 3);
/// assert_eq!(ops[1].mask, 0x0F0F_0F00_0000_0000);
/// assert_eq!(ops[1].shift, 64 - 12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn synthesize(pattern: &KeyPattern, family: Family) -> Plan {
    if pattern.max_len() < 8 {
        return Plan::StlFallback;
    }
    synthesize_unchecked(pattern, family)
}

/// [`synthesize`] with a cooperative cancellation checkpoint threaded
/// through the synthesis loops (target collection, word cover, mask
/// construction) — the entry point the resynthesis supervisor runs, so a
/// deadline or an explicit cancel stops the search between units of work
/// instead of after the fact.
///
/// # Errors
///
/// Returns [`crate::hash::SynthError::Cancelled`] once `token` reports
/// cancellation; the partial plan is discarded.
pub fn synthesize_with_cancel(
    pattern: &KeyPattern,
    family: Family,
    token: &crate::supervisor::CancelToken,
) -> Result<Plan, crate::hash::SynthError> {
    synthesize_with_stats_cancel(pattern, family, token).map(|(plan, _)| plan)
}

/// Search statistics of one synthesis run — the solver telemetry that
/// makes synthesis strategies comparable (SyGuS-style node counts), fed
/// into the observability layer as `SynthSearch` events.
///
/// The fields split into two groups. **Deterministic** fields are pure
/// functions of (pattern, family) and must be bit-identical between the
/// sequential and parallel searches at any thread count:
/// `nodes_expanded`, `candidates_rejected`, `candidates_considered`, and
/// `work_units`. **Schedule-dependent** fields (`steals`, `wall_nanos`)
/// describe how this particular run executed and are excluded from every
/// equivalence assertion.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SearchStats {
    /// Byte positions the target scan expanded (one per candidate
    /// position examined, across every synthesis loop).
    pub nodes_expanded: u64,
    /// Candidate targets skipped by the canonical (index-0) greedy cover
    /// because an earlier load already covered them.
    pub candidates_rejected: u64,
    /// Cover candidates enumerated by the cost search (the canonical
    /// greedy cover plus every alignment-backoff variant). Deterministic:
    /// depends only on the pattern and family.
    pub candidates_considered: u64,
    /// Work units the candidate space was partitioned into (cancellation
    /// and stealing granularity, [`WORK_UNIT`] candidates each).
    /// Deterministic: a pure function of `candidates_considered`.
    pub work_units: u64,
    /// Work units a parallel worker claimed outside its round-robin home
    /// assignment. Zero for sequential runs; schedule-dependent.
    pub steals: u64,
    /// Wall-clock duration of the search, in nanoseconds.
    /// Schedule-dependent.
    pub wall_nanos: u64,
    /// Whether this result was served from a [`crate::cache::PlanCache`]
    /// instead of a fresh search.
    pub cache_hit: bool,
}

/// [`synthesize`], also returning the [`SearchStats`] of the run.
#[must_use]
pub fn synthesize_with_stats(pattern: &KeyPattern, family: Family) -> (Plan, SearchStats) {
    let t0 = std::time::Instant::now();
    let mut stats = SearchStats::default();
    if pattern.max_len() < 8 {
        return (Plan::StlFallback, stats);
    }
    let exec = SearchExec::Sequential(&|| Ok(()));
    let result = match family {
        Family::Aes => synthesize_blocks_impl(pattern, &exec, &mut stats),
        Family::Naive | Family::OffXor | Family::Pext => {
            synthesize_words_impl(pattern, family, &exec, &mut stats)
        }
    };
    stats.wall_nanos = t0.elapsed().as_nanos() as u64;
    match result {
        Ok(plan) => (plan, stats),
        Err(_) => unreachable!("uncancellable synthesis cannot fail"),
    }
}

/// [`synthesize_with_cancel`], also returning the [`SearchStats`] of the
/// (possibly aborted) run.
///
/// # Errors
///
/// Returns [`crate::hash::SynthError::Cancelled`] once `token` reports
/// cancellation; the partial plan and its statistics are discarded.
pub fn synthesize_with_stats_cancel(
    pattern: &KeyPattern,
    family: Family,
    token: &crate::supervisor::CancelToken,
) -> Result<(Plan, SearchStats), crate::hash::SynthError> {
    let t0 = std::time::Instant::now();
    token.check()?;
    let mut stats = SearchStats::default();
    if pattern.max_len() < 8 {
        return Ok((Plan::StlFallback, stats));
    }
    let check: &dyn Fn() -> Result<(), crate::hash::SynthError> = &|| Ok(token.check()?);
    let exec = SearchExec::Sequential(check);
    let plan = match family {
        Family::Aes => synthesize_blocks_impl(pattern, &exec, &mut stats)?,
        Family::Naive | Family::OffXor | Family::Pext => {
            synthesize_words_impl(pattern, family, &exec, &mut stats)?
        }
    };
    stats.wall_nanos = t0.elapsed().as_nanos() as u64;
    Ok((plan, stats))
}

/// [`synthesize`], running the candidate-cover search on up to `jobs`
/// scoped worker threads. Bit-identical to the sequential search at any
/// `jobs` value: candidates are scored under the `(cost, index)` total
/// order, so the winner is independent of work distribution. `jobs` of 0
/// or 1 runs the sequential path.
#[must_use]
pub fn synthesize_parallel(pattern: &KeyPattern, family: Family, jobs: usize) -> Plan {
    synthesize_parallel_with_stats(pattern, family, jobs).0
}

/// [`synthesize_parallel`], also returning the [`SearchStats`] of the run.
/// The deterministic fields (`nodes_expanded`, `candidates_rejected`,
/// `candidates_considered`, `work_units`) equal the sequential search's;
/// `steals` and `wall_nanos` describe this particular schedule.
#[must_use]
pub fn synthesize_parallel_with_stats(
    pattern: &KeyPattern,
    family: Family,
    jobs: usize,
) -> (Plan, SearchStats) {
    let token = crate::supervisor::CancelToken::unbounded();
    match synthesize_parallel_with_stats_cancel(pattern, family, jobs, &token) {
        Ok(out) => out,
        Err(_) => unreachable!("an unbounded token cannot cancel synthesis"),
    }
}

/// [`synthesize_parallel`] threaded through a cancellation token: every
/// worker polls `token` once per [`WORK_UNIT`] candidates, so cancellation
/// latency is bounded by one work unit on each thread and an aborted
/// search leaves no shared state behind (worker results are local until
/// the final merge).
///
/// # Errors
///
/// Returns [`crate::hash::SynthError::Cancelled`] once `token` reports
/// cancellation; partial results are discarded.
pub fn synthesize_parallel_with_cancel(
    pattern: &KeyPattern,
    family: Family,
    jobs: usize,
    token: &crate::supervisor::CancelToken,
) -> Result<Plan, crate::hash::SynthError> {
    synthesize_parallel_with_stats_cancel(pattern, family, jobs, token).map(|(plan, _)| plan)
}

/// [`synthesize_parallel_with_cancel`], also returning the
/// [`SearchStats`] of the (possibly aborted) run.
///
/// # Errors
///
/// Returns [`crate::hash::SynthError::Cancelled`] once `token` reports
/// cancellation; the partial plan and its statistics are discarded.
pub fn synthesize_parallel_with_stats_cancel(
    pattern: &KeyPattern,
    family: Family,
    jobs: usize,
    token: &crate::supervisor::CancelToken,
) -> Result<(Plan, SearchStats), crate::hash::SynthError> {
    let t0 = std::time::Instant::now();
    token.check()?;
    let mut stats = SearchStats::default();
    if pattern.max_len() < 8 {
        return Ok((Plan::StlFallback, stats));
    }
    let exec = SearchExec::Parallel {
        token,
        jobs: jobs.max(1),
    };
    let plan = match family {
        Family::Aes => synthesize_blocks_impl(pattern, &exec, &mut stats)?,
        Family::Naive | Family::OffXor | Family::Pext => {
            synthesize_words_impl(pattern, family, &exec, &mut stats)?
        }
    };
    stats.wall_nanos = t0.elapsed().as_nanos() as u64;
    Ok((plan, stats))
}

/// Synthesizes a plan *without* the eight-byte minimum-length guard.
///
/// SEPE normally refuses formats shorter than a machine word (footnote 5
/// of the paper); the RQ7 worst-case experiment force-synthesizes a Pext
/// hash for four-digit keys anyway. Loads past the end of a key read as
/// zero, so the resulting plan is safe — merely low-quality, which is the
/// point of that experiment.
#[must_use]
pub fn synthesize_unchecked(pattern: &KeyPattern, family: Family) -> Plan {
    match family {
        Family::Aes => synthesize_blocks(pattern),
        Family::Naive | Family::OffXor | Family::Pext => synthesize_words(pattern, family),
    }
}

/// Greedy word cover: repeatedly place an eight-byte load over the first
/// uncovered byte we care about, clamping the final load so it never reads
/// past `region_len` (this produces the overlapping loads of Section 3.2.2:
/// "the last load of a non-constant sequence of n bits always starts at
/// position n − 8").
///
/// This is candidate **zero** of the cost search: the anchor-aligned
/// placement with every backoff digit at zero (see [`candidate_cover`]).
fn cover_with_loads(
    targets: &[usize],
    region_len: usize,
    width: usize,
    stats: &mut SearchStats,
) -> Vec<u32> {
    debug_assert!(region_len >= width);
    let mut loads = Vec::new();
    let mut covered_until = 0usize; // everything below this is covered
    for &t in targets {
        if t < covered_until {
            stats.candidates_rejected += 1;
            continue;
        }
        let offset = t.min(region_len - width);
        loads.push(offset as u32);
        covered_until = offset + width;
    }
    loads
}

/// Alignment backoffs tried per load placement by the candidate search:
/// digit `b` places the load `b` bytes left of its greedy anchor.
pub const BACKOFF_RADIX: u64 = 4;

/// Cap on the candidate covers one search enumerates. The space is
/// [`BACKOFF_RADIX`]^placements, truncated here so pathological patterns
/// cannot turn synthesis into an exponential walk.
pub const MAX_CANDIDATES: u64 = 256;

/// Candidates per work unit — the granularity of both cancellation checks
/// and parallel work distribution. A cancelled search stops within one
/// work unit on every thread.
pub const WORK_UNIT: u64 = 16;

/// The size of the candidate space for a search whose canonical greedy
/// cover used `greedy_loads` loads: one backoff digit per placement (the
/// first four placements carry digits; deeper covers share the cap).
fn candidate_count(greedy_loads: usize) -> u64 {
    if greedy_loads == 0 {
        return 1;
    }
    let digits = u32::try_from(greedy_loads.min(4)).expect("≤ 4 digits");
    BACKOFF_RADIX.saturating_pow(digits).min(MAX_CANDIDATES)
}

/// Builds the cover of candidate `index`: the mixed-radix digits of
/// `index` (base [`BACKOFF_RADIX`], least significant digit first) give
/// each successive placement an alignment backoff, shifting that load up
/// to `RADIX - 1` bytes left of its greedy anchor. Digit values never
/// reach the load width, so the anchoring target stays covered, and every
/// load still makes progress — the cover terminates for any index.
/// Candidate 0 (all digits zero) is exactly [`cover_with_loads`].
fn candidate_cover(targets: &[usize], region_len: usize, width: usize, index: u64) -> Vec<u32> {
    let mut loads = Vec::new();
    let mut covered_until = 0usize;
    let mut code = index;
    for &t in targets {
        if t < covered_until {
            continue;
        }
        let backoff = (code % BACKOFF_RADIX) as usize;
        code /= BACKOFF_RADIX;
        let offset = t.saturating_sub(backoff).min(region_len - width);
        loads.push(offset as u32);
        covered_until = offset + width;
    }
    loads
}

/// The execution cost the search minimizes: the number of loads the
/// emitted hash performs. The canonical greedy cover is provably minimal
/// here (it is the classic optimal strategy for covering points with
/// fixed-width intervals), so with the `(cost, index)` tie-break candidate
/// 0 wins every tie — which is what keeps the searched plans bit-identical
/// to the seed's greedy synthesis while richer cost models remain
/// drop-in.
fn cover_cost(loads: &[u32]) -> u64 {
    loads.len() as u64
}

/// The per-unit-of-work checkpoint threaded through the synthesis loops:
/// a no-op for plain [`synthesize`], a [`crate::supervisor::CancelToken`]
/// check for [`synthesize_with_cancel`].
type SynthCheck<'a> = &'a dyn Fn() -> Result<(), crate::hash::SynthError>;

/// How the candidate search executes: on the calling thread behind a
/// [`SynthCheck`], or fanned out over scoped worker threads that poll a
/// shared [`crate::supervisor::CancelToken`] once per work unit.
enum SearchExec<'a> {
    Sequential(SynthCheck<'a>),
    Parallel {
        token: &'a crate::supervisor::CancelToken,
        jobs: usize,
    },
}

impl SearchExec<'_> {
    fn check(&self) -> Result<(), crate::hash::SynthError> {
        match self {
            SearchExec::Sequential(check) => check(),
            SearchExec::Parallel { token, .. } => Ok(token.check()?),
        }
    }
}

/// Selects the winning cover from the candidate space.
///
/// The winner is the minimum under the lexicographic `(cost, index)` total
/// order — a schedule-independent selection rule, so the parallel path
/// returns bit-identical covers to the sequential path at any thread
/// count: workers reduce their chunks to local minima and the final merge
/// takes the global minimum under the same order, which is associative
/// and commutative.
fn search_cover(
    targets: &[usize],
    region_len: usize,
    width: usize,
    exec: &SearchExec<'_>,
    stats: &mut SearchStats,
) -> Result<Vec<u32>, crate::hash::SynthError> {
    // Candidate 0: the canonical greedy cover, whose rejection counts are
    // the seed's telemetry semantics.
    let greedy = cover_with_loads(targets, region_len, width, stats);
    let total = candidate_count(greedy.len());
    stats.candidates_considered += total;
    let chunks = (total - 1).div_ceil(WORK_UNIT);
    stats.work_units += chunks;
    let mut best_cost = cover_cost(&greedy);
    let mut best_index = 0u64;
    let mut best = greedy;
    match exec {
        SearchExec::Parallel { token, jobs } if *jobs > 1 && chunks > 1 => {
            let workers = (*jobs).min(chunks as usize);
            let cursor = std::sync::atomic::AtomicU64::new(0);
            let steals = std::sync::atomic::AtomicU64::new(0);
            type Local = Option<(u64, u64, Vec<u32>)>;
            let results: Vec<Result<Local, crate::supervisor::SynthCancelled>> =
                std::thread::scope(|s| {
                    let handles: Vec<_> = (0..workers)
                        .map(|w| {
                            let cursor = &cursor;
                            let steals = &steals;
                            s.spawn(move || {
                                let mut local: Local = None;
                                loop {
                                    let chunk =
                                        cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                    if chunk >= chunks {
                                        break;
                                    }
                                    // Per-work-unit cancellation: a cancel
                                    // lands within one unit on every worker.
                                    token.check()?;
                                    if chunk as usize % workers != w {
                                        steals.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                    }
                                    let lo = 1 + chunk * WORK_UNIT;
                                    let hi = (lo + WORK_UNIT).min(total);
                                    for index in lo..hi {
                                        let cover =
                                            candidate_cover(targets, region_len, width, index);
                                        let cost = cover_cost(&cover);
                                        let better = local
                                            .as_ref()
                                            .is_none_or(|(c, i, _)| (cost, index) < (*c, *i));
                                        if better {
                                            local = Some((cost, index, cover));
                                        }
                                    }
                                }
                                Ok(local)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("search worker never panics"))
                        .collect()
                });
            let mut cancelled = false;
            for result in results {
                match result {
                    Err(crate::supervisor::SynthCancelled) => cancelled = true,
                    Ok(Some((cost, index, cover))) => {
                        if (cost, index) < (best_cost, best_index) {
                            best_cost = cost;
                            best_index = index;
                            best = cover;
                        }
                    }
                    Ok(None) => {}
                }
            }
            if cancelled {
                return Err(crate::hash::SynthError::Cancelled);
            }
            stats.steals += steals.load(std::sync::atomic::Ordering::Relaxed);
        }
        _ => {
            for index in 1..total {
                if (index - 1).is_multiple_of(WORK_UNIT) {
                    exec.check()?;
                }
                let cover = candidate_cover(targets, region_len, width, index);
                let cost = cover_cost(&cover);
                if (cost, index) < (best_cost, best_index) {
                    best_cost = cost;
                    best_index = index;
                    best = cover;
                }
            }
        }
    }
    Ok(best)
}

fn synthesize_words(pattern: &KeyPattern, family: Family) -> Plan {
    let exec = SearchExec::Sequential(&|| Ok(()));
    match synthesize_words_impl(pattern, family, &exec, &mut SearchStats::default()) {
        Ok(plan) => plan,
        Err(_) => unreachable!("uncancellable synthesis cannot fail"),
    }
}

fn synthesize_words_impl(
    pattern: &KeyPattern,
    family: Family,
    exec: &SearchExec<'_>,
    stats: &mut SearchStats,
) -> Result<Plan, crate::hash::SynthError> {
    let min_len = pattern.min_len();
    let fixed = pattern.is_fixed_len();
    // The region word loads may cover. For variable-length formats, loads
    // are placed within the mandatory prefix only; if that prefix is shorter
    // than a word, everything goes through the tail loop.
    let region_len = if fixed { pattern.max_len() } else { min_len };

    let mut targets: Vec<usize> = Vec::new();
    for i in 0..region_len {
        exec.check()?;
        stats.nodes_expanded += 1;
        match family {
            // Naive ignores the const constraint: every byte is a target.
            Family::Naive => targets.push(i),
            // OffXor/Pext: only bytes with at least one variable bit.
            _ => {
                if !pattern.bytes()[i].is_const() {
                    targets.push(i);
                }
            }
        }
    }

    let (offsets, tail_start) = if region_len >= 8 {
        let offsets = search_cover(&targets, region_len, 8, exec, stats)?;
        let tail = offsets
            .last()
            .map_or(0, |&o| o as usize + 8)
            .max(region_len.min(min_len));
        (offsets, tail)
    } else if fixed && !targets.is_empty() {
        // Force-synthesized sub-word format (synthesize_unchecked): one
        // zero-padded load covers the whole key.
        (vec![0u32], region_len)
    } else {
        (Vec::new(), 0)
    };

    // Masks: Pext keeps only variable bits of bytes not already covered by
    // an earlier load (Figure 12's mk1 zeroes the overlap). Other families
    // use the identity mask and rotate clamped (overlapping) loads by a
    // half byte so the overlap cannot cancel against the earlier load.
    let mut ops = Vec::with_capacity(offsets.len());
    let mut covered_until = 0usize;
    for &offset in &offsets {
        exec.check()?;
        let offset_us = offset as usize;
        let overlaps = offset_us < covered_until;
        let (mask, shift) = if family == Family::Pext {
            let mut m = 0u64;
            for i in 0..8 {
                let pos = offset_us + i;
                if pos >= covered_until && pos < region_len {
                    m |= u64::from(pattern.bytes()[pos].variable_mask()) << (8 * i);
                }
            }
            (m, 0)
        } else {
            (u64::MAX, if overlaps { OVERLAP_ROTATION } else { 0 })
        };
        covered_until = covered_until.max(offset_us + 8);
        ops.push(WordOp {
            offset,
            mask,
            shift,
        });
    }

    if family == Family::Pext {
        assign_shifts(&mut ops);
    }

    Ok(if fixed {
        Plan::FixedWords {
            len: pattern.max_len(),
            ops,
        }
    } else {
        Plan::VarWords {
            min_len,
            ops,
            tail_start,
        }
    })
}

/// Packs extracted bits: the first load stays at the bottom of the range,
/// later loads stack downward from bit 63 ("shift significant bits as far to
/// the left as possible", Figure 12 step 3). When the variable bits total at
/// most 64 this makes the extraction a bijection.
fn assign_shifts(ops: &mut [WordOp]) {
    let mut used_from_top = 0u32;
    for op in ops.iter_mut().skip(1) {
        let bits = op.mask.count_ones();
        used_from_top += bits;
        op.shift = 64u32.saturating_sub(used_from_top).min(63) as u8;
    }
}

fn synthesize_blocks(pattern: &KeyPattern) -> Plan {
    let exec = SearchExec::Sequential(&|| Ok(()));
    match synthesize_blocks_impl(pattern, &exec, &mut SearchStats::default()) {
        Ok(plan) => plan,
        Err(_) => unreachable!("uncancellable synthesis cannot fail"),
    }
}

fn synthesize_blocks_impl(
    pattern: &KeyPattern,
    exec: &SearchExec<'_>,
    stats: &mut SearchStats,
) -> Result<Plan, crate::hash::SynthError> {
    let min_len = pattern.min_len();
    let fixed = pattern.is_fixed_len();
    let region_len = if fixed { pattern.max_len() } else { min_len };

    if region_len < 16 {
        // Keys shorter than one AES block: the key is replicated to fill a
        // block (the paper: "Aes requires two 16 byte values; thus, we
        // replicate the key").
        return Ok(if fixed {
            Plan::FixedBlocks {
                len: pattern.max_len(),
                offsets: Vec::new(),
            }
        } else {
            Plan::VarBlocks {
                min_len,
                offsets: Vec::new(),
                tail_start: 0,
            }
        });
    }

    let mut targets: Vec<usize> = Vec::new();
    for i in 0..region_len {
        exec.check()?;
        stats.nodes_expanded += 1;
        if !pattern.bytes()[i].is_const() {
            targets.push(i);
        }
    }
    let offsets = search_cover(&targets, region_len, 16, exec, stats)?;
    let tail_start = offsets
        .last()
        .map_or(0, |&o| o as usize + 16)
        .max(min_len.min(region_len));

    Ok(if fixed {
        Plan::FixedBlocks {
            len: pattern.max_len(),
            offsets,
        }
    } else {
        Plan::VarBlocks {
            min_len,
            offsets,
            tail_start,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::infer_pattern;
    use crate::regex::Regex;

    fn pattern(re: &str) -> KeyPattern {
        Regex::compile(re).expect("test regex compiles")
    }

    #[test]
    fn short_keys_fall_back_to_stl() {
        let p = pattern(r"\d{4}");
        for f in Family::ALL {
            assert!(synthesize(&p, f).is_fallback());
        }
    }

    #[test]
    fn ssn_offxor_matches_figure_5() {
        // Figure 5: OffXor for a 15-byte IPv4 loads at 0 and 7.
        let p = pattern(r"(([0-9]{3})\.){3}[0-9]{3}");
        let Plan::FixedWords { len, ops } = synthesize(&p, Family::OffXor) else {
            panic!("expected fixed plan");
        };
        assert_eq!(len, 15);
        assert_eq!(ops.iter().map(|o| o.offset).collect::<Vec<_>>(), vec![0, 7]);
        assert!(ops.iter().all(|o| o.mask == u64::MAX));
        // The final load is clamped to 15 - 8 = 7 and re-reads byte 7, so
        // it carries the anti-cancellation rotation; the first does not.
        assert_eq!(ops[0].shift, 0);
        assert_eq!(ops[1].shift, OVERLAP_ROTATION);
    }

    #[test]
    fn only_clamped_loads_are_rotated() {
        // 16 digits tile exactly: no clamp, no rotation anywhere.
        let p = pattern(r"[0-9]{16}");
        let Plan::FixedWords { ops, .. } = synthesize(&p, Family::Naive) else {
            panic!("expected fixed plan");
        };
        assert_eq!(ops.iter().map(|o| o.offset).collect::<Vec<_>>(), vec![0, 8]);
        assert!(ops.iter().all(|o| o.shift == 0));
        // 20 digits clamp the final load to 12 (overlapping 12..16).
        let p = pattern(r"[0-9]{20}");
        let Plan::FixedWords { ops, .. } = synthesize(&p, Family::Naive) else {
            panic!("expected fixed plan");
        };
        assert_eq!(
            ops.iter().map(|o| o.shift).collect::<Vec<_>>(),
            vec![0, 0, OVERLAP_ROTATION]
        );
    }

    #[test]
    fn naive_covers_every_byte() {
        let p = pattern(r"[0-9]{20}");
        let Plan::FixedWords { ops, .. } = synthesize(&p, Family::Naive) else {
            panic!("expected fixed plan");
        };
        assert_eq!(
            ops.iter().map(|o| o.offset).collect::<Vec<_>>(),
            vec![0, 8, 12]
        );
    }

    #[test]
    fn offxor_skips_long_constant_prefix() {
        // 23 constant bytes, then 20 variable, then constant ".html".
        let p = infer_pattern([
            &b"https://siteexample.us/aaaaaaaaaaaaaaaaaaaa.html"[..],
            b"https://siteexample.us/z9z9z9z9z9z9z9z9z9z9.html",
        ])
        .unwrap();
        let Plan::FixedWords { ops, .. } = synthesize(&p, Family::OffXor) else {
            panic!("expected fixed plan");
        };
        assert_eq!(
            ops.iter().map(|o| o.offset).collect::<Vec<_>>(),
            vec![23, 31, 39]
        );
    }

    #[test]
    fn pext_masks_exclude_constant_bytes_and_overlap() {
        let p = pattern(r"\d{3}\.\d{2}\.\d{4}"); // SSN with dots
        let Plan::FixedWords { ops, .. } = synthesize(&p, Family::Pext) else {
            panic!("expected fixed plan");
        };
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].mask, 0x0F00_0F0F_000F_0F0F, "Figure 12 mk0");
        assert_eq!(ops[1].mask, 0x0F0F_0F00_0000_0000, "Figure 12 mk1");
        assert_eq!(ops[0].shift, 0);
        assert_eq!(ops[1].shift, 52, "Figure 12 shifts by 64 - 12");
    }

    #[test]
    fn pext_bijection_bit_budget() {
        // 16 digits = 64 variable bits: masks must cover exactly 64 bits.
        let p = pattern(r"[0-9]{16}");
        let Plan::FixedWords { ops, .. } = synthesize(&p, Family::Pext) else {
            panic!("expected fixed plan");
        };
        let total: u32 = ops.iter().map(|o| o.mask.count_ones()).sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn aes_blocks_cover_variable_region() {
        let p = pattern(r"[0-9]{40}");
        let Plan::FixedBlocks { len, offsets } = synthesize(&p, Family::Aes) else {
            panic!("expected block plan");
        };
        assert_eq!(len, 40);
        assert_eq!(offsets, vec![0, 16, 24]);
    }

    #[test]
    fn aes_short_key_replicates() {
        let p = pattern(r"\d{3}-\d{2}-\d{4}"); // 11 bytes
        let Plan::FixedBlocks { offsets, .. } = synthesize(&p, Family::Aes) else {
            panic!("expected block plan");
        };
        assert!(offsets.is_empty());
    }

    #[test]
    fn variable_length_yields_var_plan() {
        let p = infer_pattern([
            &b"prefix=0000000000"[..],
            b"prefix=9999999999......tail-bytes",
        ])
        .unwrap();
        let plan = synthesize(&p, Family::OffXor);
        let Plan::VarWords {
            min_len,
            ops,
            tail_start,
        } = plan
        else {
            panic!("expected var plan, got {plan:?}");
        };
        assert_eq!(min_len, 17);
        assert!(!ops.is_empty());
        assert!(tail_start >= min_len.min(ops.last().unwrap().offset as usize + 8));
    }

    #[test]
    fn no_variable_bytes_yields_empty_ops() {
        // A fully constant format: nothing to load for OffXor/Pext.
        let p = KeyPattern::of_key(b"always-the-same!");
        let Plan::FixedWords { ops, .. } = synthesize(&p, Family::OffXor) else {
            panic!("expected fixed plan");
        };
        assert!(ops.is_empty());
    }

    #[test]
    fn cancellable_synthesis_agrees_with_plain_synthesis() {
        use crate::supervisor::CancelToken;
        let token = CancelToken::unbounded();
        for re in [
            r"\d{3}-\d{2}-\d{4}",
            r"(([0-9]{3})\.){3}[0-9]{3}",
            r"[a-z]{8}[0-9]{0,4}",
            r"[0-9]{100}",
            r"\d{4}",
        ] {
            let p = pattern(re);
            for f in Family::ALL {
                assert_eq!(
                    synthesize_with_cancel(&p, f, &token).expect("uncancelled"),
                    synthesize(&p, f),
                    "{re} {f}"
                );
            }
        }
    }

    #[test]
    fn cancelled_synthesis_returns_a_typed_error() {
        use crate::hash::SynthError;
        use crate::supervisor::CancelToken;
        let token = CancelToken::unbounded();
        token.cancel();
        let p = pattern(r"[0-9]{100}");
        for f in Family::ALL {
            assert_eq!(
                synthesize_with_cancel(&p, f, &token),
                Err(SynthError::Cancelled),
                "{f}"
            );
        }
    }

    #[test]
    fn ints_100_digits_pext_plan_is_linear_cover() {
        let p = pattern(r"[0-9]{100}");
        let Plan::FixedWords { ops, .. } = synthesize(&p, Family::Pext) else {
            panic!("expected fixed plan");
        };
        // ceil(100 / 8) = 13 loads, last overlapping at 92.
        assert_eq!(ops.len(), 13);
        assert_eq!(ops.last().unwrap().offset, 92);
        // 400 variable bits total (the paper's "key-types with 400 relevant
        // bits").
        let total: u32 = ops.iter().map(|o| o.mask.count_ones()).sum();
        assert_eq!(total, 400);
    }

    /// The regexes whose plans are pinned elsewhere in this module; the
    /// parallel search must reproduce every one of them byte for byte.
    const CORPUS: &[&str] = &[
        r"[0-9]{3}-[0-9]{2}-[0-9]{4}",
        r"[0-9]{20}",
        r"[0-9]{100}",
        r"https://www\.[a-z]{8}\.com/[a-z0-9]{12}",
        r"[A-Z]{2}[0-9]{6}[a-z]{14}",
        r"[a-z]{5,40}",
        r"key_[0-9]{4,16}",
    ];

    #[test]
    fn parallel_search_is_bit_identical_to_sequential() {
        for re in CORPUS {
            let p = pattern(re);
            for f in Family::ALL {
                let (seq_plan, seq_stats) = synthesize_with_stats(&p, f);
                for jobs in [1usize, 2, 4, 8] {
                    let (par_plan, par_stats) = synthesize_parallel_with_stats(&p, f, jobs);
                    assert_eq!(par_plan, seq_plan, "{re} {f} jobs={jobs}");
                    assert_eq!(
                        par_stats.candidates_considered, seq_stats.candidates_considered,
                        "{re} {f} jobs={jobs}"
                    );
                    assert_eq!(
                        par_stats.nodes_expanded, seq_stats.nodes_expanded,
                        "{re} {f} jobs={jobs}"
                    );
                    assert_eq!(
                        par_stats.work_units, seq_stats.work_units,
                        "{re} {f} jobs={jobs}"
                    );
                }
            }
        }
    }

    #[test]
    fn candidate_zero_is_the_greedy_cover() {
        let targets = [0usize, 5, 9, 14, 23, 31];
        let mut stats = SearchStats::default();
        let greedy = cover_with_loads(&targets, 40, 8, &mut stats);
        assert_eq!(candidate_cover(&targets, 40, 8, 0), greedy);
    }

    #[test]
    fn candidate_count_is_capped() {
        assert_eq!(candidate_count(0), 1);
        assert_eq!(candidate_count(1), 4);
        assert_eq!(candidate_count(2), 16);
        assert_eq!(candidate_count(4), 256);
        // Deep covers saturate at the cap rather than exploding.
        assert_eq!(candidate_count(13), MAX_CANDIDATES);
    }

    #[test]
    fn sequential_search_checks_cancellation_once_per_work_unit() {
        use core::cell::Cell;
        let p = pattern(r"[0-9]{100}");
        let calls = Cell::new(0u64);
        let check = || {
            calls.set(calls.get() + 1);
            Ok(())
        };
        let exec = SearchExec::Sequential(&check);
        let mut stats = SearchStats::default();
        synthesize_words_impl(&p, Family::Pext, &exec, &mut stats)
            .expect("uncancelled search succeeds");
        // The 13-load cover searches MAX_CANDIDATES candidates, so the
        // cover loop alone must poll at least once per work unit.
        assert!(stats.work_units >= MAX_CANDIDATES / WORK_UNIT);
        assert!(
            calls.get() >= stats.work_units,
            "{} checks for {} work units",
            calls.get(),
            stats.work_units
        );
    }

    #[test]
    fn cancellation_latency_is_bounded_by_one_work_unit() {
        use crate::hash::SynthError;
        use core::cell::Cell;
        let p = pattern(r"[0-9]{100}");
        // Count how many checks an uncancelled run performs, then abort at
        // a checkpoint in the middle: the search must stop at exactly that
        // poll rather than draining the remaining candidates.
        let calls = Cell::new(0u64);
        let count_all = || {
            calls.set(calls.get() + 1);
            Ok(())
        };
        let mut stats = SearchStats::default();
        synthesize_words_impl(
            &p,
            Family::Pext,
            &SearchExec::Sequential(&count_all),
            &mut stats,
        )
        .expect("uncancelled search succeeds");
        let total_checks = calls.get();
        assert!(total_checks > 4, "need room to cancel mid-search");

        let cancel_at = total_checks / 2;
        let seen = Cell::new(0u64);
        let cancel_mid = || {
            seen.set(seen.get() + 1);
            if seen.get() >= cancel_at {
                Err(SynthError::Cancelled)
            } else {
                Ok(())
            }
        };
        let mut aborted = SearchStats::default();
        let err = synthesize_words_impl(
            &p,
            Family::Pext,
            &SearchExec::Sequential(&cancel_mid),
            &mut aborted,
        )
        .expect_err("mid-search cancellation must surface");
        assert_eq!(err, SynthError::Cancelled);
        // Latency bound: the search observed the cancellation at the very
        // checkpoint that raised it — no further polls ran, so at most one
        // work unit of candidates was evaluated past the cancel point.
        assert_eq!(seen.get(), cancel_at);
    }

    #[test]
    fn cancelled_parallel_search_leaves_no_poisoned_state() {
        use crate::hash::SynthError;
        use crate::supervisor::CancelToken;
        let p = pattern(r"[0-9]{100}");
        for f in Family::ALL {
            let token = CancelToken::unbounded();
            token.cancel();
            assert_eq!(
                synthesize_parallel_with_cancel(&p, f, 4, &token),
                Err(SynthError::Cancelled),
                "{f}"
            );
            // A fresh run after the abort still produces the exact plan.
            let token = CancelToken::unbounded();
            assert_eq!(
                synthesize_parallel_with_cancel(&p, f, 4, &token).expect("fresh run"),
                synthesize(&p, f),
                "{f}"
            );
        }
    }
}
