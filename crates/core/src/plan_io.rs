//! JSON serialization for patterns and plans, with no external
//! dependencies.
//!
//! Synthesized plans are cheap to recompute but caching them to disk (and
//! shipping them between processes) keeps cold starts off the profile and
//! makes plans reviewable in code review. The encoding matches what
//! serde's derive would produce so cached files stay readable:
//!
//! * [`KeyPattern`] — `{"bytes":[{"const_mask":240,"const_bits":48},…],"min_len":11}`
//! * [`Plan`] — externally tagged enum, e.g.
//!   `{"FixedWords":{"len":11,"ops":[{"offset":0,"mask":…,"shift":0},…]}}`,
//!   with the unit variant as the bare string `"StlFallback"`.
//!
//! The module exposes a tiny [`Json`] value type plus a strict parser;
//! both are general-purpose enough for the test suites and the `sepe-verify`
//! tooling to reuse.
//!
//! Plans cross a trust boundary when they come back from disk: the batched
//! kernels and the emitted C++ perform raw loads at the plan's offsets, so
//! deserialization is hardened. Bundles carry a schema version
//! ([`BUNDLE_VERSION`]) and an FNV-1a checksum of the payload, and every
//! decoded plan passes [`validate_plan`] / [`validate_bundle`] — load
//! bounds, family/plan agreement, and mask-vs-constant-bit consistency —
//! before a caller can hash a single key with it.

use crate::hash::SynthError;
use crate::pattern::{BytePattern, KeyPattern};
use crate::synth::{Family, Plan, WordOp};
use std::collections::BTreeMap;
use std::fmt;

/// Schema version stamped into every serialized [`SynthBundle`].
///
/// Version 2 added the version stamp itself plus a payload checksum;
/// version-1 bundles (no stamp) are rejected rather than guessed at,
/// because a plan that reaches the unchecked batch kernels must have
/// passed the validation this version introduces.
pub const BUNDLE_VERSION: u64 = 2;

/// A parsed JSON value. Objects use a [`BTreeMap`] so encoding is
/// deterministic regardless of insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number. Stored as `f64`, which is exact for the `u64`
    /// values this module produces only up to 2^53; masks are therefore
    /// encoded as [`Json::Str`] decimal strings, never as numbers.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member access on objects; [`Json::Null`] on anything else or when
    /// the key is absent. Mirrors `serde_json::Value`'s indexing, which the
    /// tests rely on for shape assertions.
    #[must_use]
    pub fn get(&self, key: &str) -> &Json {
        match self {
            Json::Obj(map) => map.get(key).unwrap_or(&Json::Null),
            _ => &Json::Null,
        }
    }

    /// Element access on arrays; [`Json::Null`] out of range.
    #[must_use]
    pub fn at(&self, index: usize) -> &Json {
        match self {
            Json::Arr(items) => items.get(index).unwrap_or(&Json::Null),
            _ => &Json::Null,
        }
    }

    /// The value as a `u64`, accepting both numbers and the decimal
    /// strings used for 64-bit masks.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            Json::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document. The whole input must be consumed.
    ///
    /// # Errors
    ///
    /// Returns a byte offset plus message for malformed input.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        '\r' => f.write_str("\\r")?,
                        '\t' => f.write_str("\\t")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                f.write_str("\"")
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", Json::Str(k.clone()))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A malformed JSON document or a well-formed document of the wrong shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset the error was detected at (0 for shape errors).
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for ParseError {}

impl From<ParseError> for SynthError {
    fn from(e: ParseError) -> Self {
        SynthError::MalformedPlan {
            at: e.at,
            message: e.message,
        }
    }
}

fn shape_err(message: impl Into<String>) -> ParseError {
    ParseError {
        at: 0,
        message: message.into(),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Json::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for plan files.
                            let c =
                                char::from_u32(hex).ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the full UTF-8 sequence starting here.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn num(n: usize) -> Json {
    Json::Num(n as f64)
}

fn obj(entries: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Encodes a [`KeyPattern`] as a JSON value.
#[must_use]
pub fn key_pattern_to_json(pattern: &KeyPattern) -> Json {
    let bytes = pattern
        .bytes()
        .iter()
        .map(|b| {
            obj([
                ("const_mask", num(usize::from(b.const_mask()))),
                ("const_bits", num(usize::from(b.const_bits()))),
            ])
        })
        .collect();
    obj([
        ("bytes", Json::Arr(bytes)),
        ("min_len", num(pattern.min_len())),
    ])
}

/// Decodes a [`KeyPattern`] from a JSON value.
///
/// # Errors
///
/// Returns a shape error when required members are missing or malformed.
pub fn key_pattern_from_json(json: &Json) -> Result<KeyPattern, ParseError> {
    let bytes = json
        .get("bytes")
        .as_arr()
        .ok_or_else(|| shape_err("KeyPattern: missing 'bytes' array"))?;
    let mut out = Vec::with_capacity(bytes.len());
    for b in bytes {
        let mask = b
            .get("const_mask")
            .as_u64()
            .ok_or_else(|| shape_err("BytePattern: missing 'const_mask'"))?;
        let bits = b
            .get("const_bits")
            .as_u64()
            .ok_or_else(|| shape_err("BytePattern: missing 'const_bits'"))?;
        if mask > 0xFF || bits > 0xFF {
            return Err(shape_err("BytePattern: byte out of range"));
        }
        out.push(byte_pattern_from_parts(mask as u8, bits as u8)?);
    }
    let min_len = json
        .get("min_len")
        .as_u64()
        .ok_or_else(|| shape_err("KeyPattern: missing 'min_len'"))? as usize;
    if min_len > out.len() {
        return Err(shape_err("KeyPattern: min_len exceeds byte count"));
    }
    Ok(KeyPattern::with_min_len(out, min_len))
}

/// Rebuilds a [`BytePattern`] from its mask/bits representation, validating
/// the lattice invariants (whole two-bit groups; no constant bits outside
/// the mask).
fn byte_pattern_from_parts(const_mask: u8, const_bits: u8) -> Result<BytePattern, ParseError> {
    if const_bits & !const_mask != 0 {
        return Err(shape_err("BytePattern: const_bits outside const_mask"));
    }
    let mut quads = [crate::lattice::Quad::Top; 4];
    for (i, q) in quads.iter_mut().enumerate() {
        let shift = 6 - 2 * i as u8;
        match (const_mask >> shift) & 0b11 {
            0b11 => *q = crate::lattice::Quad::Const((const_bits >> shift) & 0b11),
            0b00 => {}
            _ => return Err(shape_err("BytePattern: const_mask not pair-aligned")),
        }
    }
    let rebuilt = BytePattern::from_quads(quads);
    if rebuilt.const_mask() != const_mask || rebuilt.const_bits() != const_bits {
        return Err(shape_err("BytePattern: inconsistent mask/bits"));
    }
    Ok(rebuilt)
}

fn word_op_to_json(op: &WordOp) -> Json {
    obj([
        ("offset", num(op.offset as usize)),
        // 64-bit masks exceed f64's exact integer range; keep them as
        // decimal strings so round-trips are lossless.
        ("mask", Json::Str(op.mask.to_string())),
        ("shift", num(usize::from(op.shift))),
    ])
}

fn word_op_from_json(json: &Json) -> Result<WordOp, ParseError> {
    let offset = json
        .get("offset")
        .as_u64()
        .ok_or_else(|| shape_err("WordOp: missing 'offset'"))?;
    let mask = json
        .get("mask")
        .as_u64()
        .ok_or_else(|| shape_err("WordOp: missing 'mask'"))?;
    let shift = json
        .get("shift")
        .as_u64()
        .ok_or_else(|| shape_err("WordOp: missing 'shift'"))?;
    if offset > u64::from(u32::MAX) || shift > 63 {
        return Err(shape_err("WordOp: field out of range"));
    }
    Ok(WordOp {
        offset: offset as u32,
        mask,
        shift: shift as u8,
    })
}

fn word_ops_to_json(ops: &[WordOp]) -> Json {
    Json::Arr(ops.iter().map(word_op_to_json).collect())
}

fn word_ops_from_json(json: &Json) -> Result<Vec<WordOp>, ParseError> {
    json.as_arr()
        .ok_or_else(|| shape_err("Plan: 'ops' is not an array"))?
        .iter()
        .map(word_op_from_json)
        .collect()
}

fn offsets_to_json(offsets: &[u32]) -> Json {
    Json::Arr(offsets.iter().map(|&o| num(o as usize)).collect())
}

fn offsets_from_json(json: &Json) -> Result<Vec<u32>, ParseError> {
    json.as_arr()
        .ok_or_else(|| shape_err("Plan: 'offsets' is not an array"))?
        .iter()
        .map(|v| {
            v.as_u64()
                .filter(|&o| o <= u64::from(u32::MAX))
                .map(|o| o as u32)
                .ok_or_else(|| shape_err("Plan: bad offset"))
        })
        .collect()
}

/// Encodes a [`Plan`] as a JSON value (externally tagged, like serde).
#[must_use]
pub fn plan_to_json(plan: &Plan) -> Json {
    match plan {
        Plan::FixedWords { len, ops } => obj([(
            "FixedWords",
            obj([("len", num(*len)), ("ops", word_ops_to_json(ops))]),
        )]),
        Plan::FixedBlocks { len, offsets } => obj([(
            "FixedBlocks",
            obj([("len", num(*len)), ("offsets", offsets_to_json(offsets))]),
        )]),
        Plan::VarWords {
            min_len,
            ops,
            tail_start,
        } => obj([(
            "VarWords",
            obj([
                ("min_len", num(*min_len)),
                ("ops", word_ops_to_json(ops)),
                ("tail_start", num(*tail_start)),
            ]),
        )]),
        Plan::VarBlocks {
            min_len,
            offsets,
            tail_start,
        } => obj([(
            "VarBlocks",
            obj([
                ("min_len", num(*min_len)),
                ("offsets", offsets_to_json(offsets)),
                ("tail_start", num(*tail_start)),
            ]),
        )]),
        Plan::StlFallback => Json::Str("StlFallback".to_string()),
    }
}

/// Decodes a [`Plan`] from a JSON value and validates it (see
/// [`validate_plan`]).
///
/// # Errors
///
/// Returns [`SynthError::MalformedPlan`] for unknown variants or malformed
/// members, and the validation errors of [`validate_plan`] for a
/// well-formed plan that would read past its own keys.
pub fn plan_from_json(json: &Json) -> Result<Plan, SynthError> {
    let plan = plan_shape_from_json(json)?;
    validate_plan(&plan)?;
    Ok(plan)
}

/// Syntactic decode only — shared by [`plan_from_json`] and the bundle
/// decoder, which validates the plan against its pattern afterwards.
fn plan_shape_from_json(json: &Json) -> Result<Plan, ParseError> {
    if json.as_str() == Some("StlFallback") {
        return Ok(Plan::StlFallback);
    }
    let Json::Obj(map) = json else {
        return Err(shape_err("Plan: expected an object or 'StlFallback'"));
    };
    if map.len() != 1 {
        return Err(shape_err("Plan: expected exactly one variant tag"));
    }
    let (tag, body) = map.iter().next().unwrap();
    let usize_member = |name: &str| -> Result<usize, ParseError> {
        body.get(name)
            .as_u64()
            .map(|v| v as usize)
            .ok_or_else(|| shape_err(format!("Plan::{tag}: missing '{name}'")))
    };
    match tag.as_str() {
        "FixedWords" => Ok(Plan::FixedWords {
            len: usize_member("len")?,
            ops: word_ops_from_json(body.get("ops"))?,
        }),
        "FixedBlocks" => Ok(Plan::FixedBlocks {
            len: usize_member("len")?,
            offsets: offsets_from_json(body.get("offsets"))?,
        }),
        "VarWords" => Ok(Plan::VarWords {
            min_len: usize_member("min_len")?,
            ops: word_ops_from_json(body.get("ops"))?,
            tail_start: usize_member("tail_start")?,
        }),
        "VarBlocks" => Ok(Plan::VarBlocks {
            min_len: usize_member("min_len")?,
            offsets: offsets_from_json(body.get("offsets"))?,
            tail_start: usize_member("tail_start")?,
        }),
        other => Err(shape_err(format!("Plan: unknown variant '{other}'"))),
    }
}

/// Encodes a plan to a JSON string.
#[must_use]
pub fn plan_to_string(plan: &Plan) -> String {
    plan_to_json(plan).to_string()
}

/// Decodes a plan from a JSON string and validates it.
///
/// # Errors
///
/// Returns a typed [`SynthError`] for malformed or semantically invalid
/// input.
pub fn plan_from_str(text: &str) -> Result<Plan, SynthError> {
    plan_from_json(&Json::parse(text)?)
}

/// Checks a plan's internal load-bounds invariants: every word load stays
/// within the fixed length (or the guaranteed minimum length, for
/// variable-length plans), every block load likewise, and tail loops start
/// within the guaranteed prefix. The one sanctioned exception is the RQ7
/// force-synthesized sub-word plan — a single zero-padded load at offset 0
/// of a fixed format shorter than a word.
///
/// The interpreted [`crate::hash::SynthesizedHash`] clamps loads and the
/// batched kernels length-check keys before their unchecked loads, so an
/// invalid plan cannot corrupt memory *here* — but the emitted C++ performs
/// the loads verbatim, so a plan that fails this check must never be
/// accepted from disk.
///
/// # Errors
///
/// [`SynthError::PlanLoadOutOfBounds`] for an overreaching load;
/// [`SynthError::PlanPatternMismatch`] for an inconsistent tail start.
pub fn validate_plan(plan: &Plan) -> Result<(), SynthError> {
    let oob = |offset: u32, width: u32, key_len: usize| SynthError::PlanLoadOutOfBounds {
        offset,
        width,
        key_len,
    };
    let bad_tail = |detail: &str| SynthError::PlanPatternMismatch {
        detail: detail.to_string(),
    };
    match plan {
        Plan::FixedWords { len, ops } => {
            let sub_word = *len < 8 && ops.len() == 1 && ops[0].offset == 0;
            if !sub_word {
                for op in ops {
                    if op.offset as usize + 8 > *len {
                        return Err(oob(op.offset, 8, *len));
                    }
                }
            }
        }
        Plan::VarWords {
            min_len,
            ops,
            tail_start,
        } => {
            if *min_len < 8 {
                if let Some(op) = ops.first() {
                    return Err(oob(op.offset, 8, *min_len));
                }
                if *tail_start != 0 {
                    return Err(bad_tail("sub-word VarWords must start its tail at 0"));
                }
            } else {
                for op in ops {
                    if op.offset as usize + 8 > *min_len {
                        return Err(oob(op.offset, 8, *min_len));
                    }
                }
                if *tail_start > *min_len {
                    return Err(bad_tail("tail_start past the guaranteed prefix"));
                }
            }
        }
        Plan::FixedBlocks { len, offsets } => {
            for &offset in offsets {
                if offset as usize + 16 > *len {
                    return Err(oob(offset, 16, *len));
                }
            }
        }
        Plan::VarBlocks {
            min_len,
            offsets,
            tail_start,
        } => {
            for &offset in offsets {
                if offset as usize + 16 > *min_len {
                    return Err(oob(offset, 16, *min_len));
                }
            }
            if *tail_start > *min_len {
                return Err(bad_tail("tail_start past the guaranteed prefix"));
            }
        }
        Plan::StlFallback => {}
    }
    Ok(())
}

/// Encodes a key pattern to a JSON string.
#[must_use]
pub fn key_pattern_to_string(pattern: &KeyPattern) -> String {
    key_pattern_to_json(pattern).to_string()
}

/// Decodes a key pattern from a JSON string.
///
/// # Errors
///
/// Returns a parse or shape error for malformed input.
pub fn key_pattern_from_str(text: &str) -> Result<KeyPattern, ParseError> {
    key_pattern_from_json(&Json::parse(text)?)
}

/// Everything one synthesis run produces: the inferred pattern, the family
/// chosen, and the plan — enough to reconstruct both the specialized hash
/// and its [`crate::guard::FormatGuard`] in another process.
///
/// This is the payload `keysynth --emit-plan` writes and `keysynth --plan`
/// reads back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthBundle {
    /// The key format the plan was synthesized for.
    pub pattern: KeyPattern,
    /// The hash family of the plan.
    pub family: Family,
    /// The synthesized plan itself.
    pub plan: Plan,
}

/// 64-bit FNV-1a over the canonical payload encoding. Not cryptographic —
/// it catches truncation, bit rot and hand-edits, not a deliberate forger
/// (who could regenerate it; the semantic validation is what stops a
/// hostile plan).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The checksummed portion of a bundle: everything except the version and
/// the checksum itself, in the deterministic [`Json`] object encoding.
fn bundle_payload_to_json(bundle: &SynthBundle) -> Json {
    obj([
        ("pattern", key_pattern_to_json(&bundle.pattern)),
        ("family", Json::Str(bundle.family.name().to_string())),
        ("plan", plan_to_json(&bundle.plan)),
    ])
}

/// Encodes a [`SynthBundle`] as a JSON value, stamped with
/// [`BUNDLE_VERSION`] and an FNV-1a checksum of the payload (as a decimal
/// string, like the 64-bit masks).
#[must_use]
pub fn bundle_to_json(bundle: &SynthBundle) -> Json {
    let payload = bundle_payload_to_json(bundle);
    let checksum = fnv1a64(payload.to_string().as_bytes());
    let Json::Obj(mut map) = payload else {
        unreachable!("bundle payload is always an object")
    };
    map.insert("version".to_string(), num(BUNDLE_VERSION as usize));
    map.insert("checksum".to_string(), Json::Str(checksum.to_string()));
    Json::Obj(map)
}

/// Decodes a [`SynthBundle`] from a JSON value, enforcing the trust
/// boundary in order: schema version, payload checksum, shape, then
/// semantic validation ([`validate_plan`] + [`validate_bundle`]) — so no
/// corrupted or hostile plan survives to hash a single key.
///
/// # Errors
///
/// [`SynthError::PlanVersion`] / [`SynthError::PlanChecksum`] for a stale
/// or damaged envelope, [`SynthError::MalformedPlan`] for shape problems,
/// and the validation errors for a plan inconsistent with its pattern.
pub fn bundle_from_json(json: &Json) -> Result<SynthBundle, SynthError> {
    let Json::Obj(map) = json else {
        return Err(shape_err("SynthBundle: expected an object").into());
    };
    match map.get("version").and_then(Json::as_u64) {
        None => return Err(shape_err("SynthBundle: missing 'version'").into()),
        Some(v) if v != BUNDLE_VERSION => {
            return Err(SynthError::PlanVersion {
                found: v,
                supported: BUNDLE_VERSION,
            })
        }
        Some(_) => {}
    }
    let stored = map
        .get("checksum")
        .and_then(Json::as_u64)
        .ok_or_else(|| SynthError::from(shape_err("SynthBundle: missing 'checksum'")))?;
    let mut payload = map.clone();
    payload.remove("version");
    payload.remove("checksum");
    let computed = fnv1a64(Json::Obj(payload).to_string().as_bytes());
    if stored != computed {
        return Err(SynthError::PlanChecksum { stored, computed });
    }
    let pattern = key_pattern_from_json(json.get("pattern"))
        .map_err(|e| SynthError::from(shape_err(format!("SynthBundle: {}", e.message))))?;
    let family_name = json
        .get("family")
        .as_str()
        .ok_or_else(|| SynthError::from(shape_err("SynthBundle: missing 'family'")))?;
    let family = Family::ALL
        .into_iter()
        .find(|f| f.name() == family_name)
        .ok_or_else(|| {
            SynthError::from(shape_err(format!(
                "SynthBundle: unknown family '{family_name}'"
            )))
        })?;
    let plan = plan_from_json(json.get("plan"))?;
    let bundle = SynthBundle {
        pattern,
        family,
        plan,
    };
    validate_bundle(&bundle)?;
    Ok(bundle)
}

/// Checks that a bundle's plan could have been synthesized for its pattern
/// and family: plan kind matches the family (blocks for Aes, words
/// otherwise), lengths agree with the pattern, pext masks select only
/// variable bits, and non-pext word loads use the identity mask.
///
/// # Errors
///
/// [`SynthError::PlanPatternMismatch`] or [`SynthError::PlanMaskConstBits`],
/// plus everything [`validate_plan`] rejects.
pub fn validate_bundle(bundle: &SynthBundle) -> Result<(), SynthError> {
    validate_plan(&bundle.plan)?;
    let mismatch = |detail: &str| SynthError::PlanPatternMismatch {
        detail: detail.to_string(),
    };
    let pattern = &bundle.pattern;
    match (bundle.family, &bundle.plan) {
        (_, Plan::StlFallback) => return Ok(()),
        (Family::Aes, Plan::FixedBlocks { .. } | Plan::VarBlocks { .. }) => {}
        (
            Family::Naive | Family::OffXor | Family::Pext,
            Plan::FixedWords { .. } | Plan::VarWords { .. },
        ) => {}
        _ => return Err(mismatch("plan kind does not belong to the declared family")),
    }
    match &bundle.plan {
        Plan::FixedWords { len, .. } | Plan::FixedBlocks { len, .. } => {
            if !pattern.is_fixed_len() || *len != pattern.max_len() {
                return Err(mismatch(
                    "fixed-length plan disagrees with the pattern's length",
                ));
            }
        }
        Plan::VarWords { min_len, .. } | Plan::VarBlocks { min_len, .. } => {
            if pattern.is_fixed_len() || *min_len != pattern.min_len() {
                return Err(mismatch(
                    "variable-length plan disagrees with the pattern's minimum length",
                ));
            }
        }
        Plan::StlFallback => unreachable!("handled above"),
    }
    if let Plan::FixedWords { len: region, ops }
    | Plan::VarWords {
        min_len: region,
        ops,
        ..
    } = &bundle.plan
    {
        for op in ops {
            if bundle.family == Family::Pext {
                let mut variable = 0u64;
                for i in 0..8 {
                    let pos = op.offset as usize + i;
                    if pos < *region {
                        variable |= u64::from(pattern.bytes()[pos].variable_mask()) << (8 * i);
                    }
                }
                if op.mask & !variable != 0 {
                    return Err(SynthError::PlanMaskConstBits);
                }
            } else if op.mask != u64::MAX {
                return Err(SynthError::PlanMaskConstBits);
            }
        }
    }
    Ok(())
}

/// Encodes a synthesis bundle to a JSON string.
#[must_use]
pub fn bundle_to_string(bundle: &SynthBundle) -> String {
    bundle_to_json(bundle).to_string()
}

/// Decodes a synthesis bundle from a JSON string, enforcing version,
/// checksum and semantic validation (see [`bundle_from_json`]).
///
/// # Errors
///
/// Returns a typed [`SynthError`] for malformed, stale, damaged or
/// semantically invalid input.
pub fn bundle_from_str(text: &str) -> Result<SynthBundle, SynthError> {
    bundle_from_json(&Json::parse(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parser_handles_nesting_and_escapes() {
        let v = Json::parse(r#"{"a":[1,2.5,"x\n\"y"],"b":{"c":null,"d":true}}"#).unwrap();
        assert_eq!(v.get("a").at(0).as_u64(), Some(1));
        assert_eq!(v.get("a").at(1), &Json::Num(2.5));
        assert_eq!(v.get("a").at(2).as_str(), Some("x\n\"y"));
        assert_eq!(v.get("b").get("c"), &Json::Null);
        assert_eq!(v.get("b").get("d"), &Json::Bool(true));
        assert_eq!(v.get("missing"), &Json::Null);
    }

    #[test]
    fn json_parser_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse(r#""open"#).is_err());
    }

    #[test]
    fn display_round_trips() {
        let text = r#"{"a":[1,"m",true],"b":null}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn masks_round_trip_exactly() {
        let op = WordOp {
            offset: 3,
            mask: u64::MAX - 1,
            shift: 52,
        };
        let back = word_op_from_json(&word_op_to_json(&op)).unwrap();
        assert_eq!(back, op);
    }

    #[test]
    fn malformed_plans_are_rejected() {
        assert!(plan_from_str(r#"{"NoSuchPlan":{}}"#).is_err());
        assert!(plan_from_str(r#"{"FixedWords":{"len":4}}"#).is_err());
        assert!(plan_from_str(r#"{"FixedWords":{"len":4,"ops":[]},"Extra":1}"#).is_err());
        // shift out of range
        assert!(plan_from_str(
            r#"{"FixedWords":{"len":8,"ops":[{"offset":0,"mask":"1","shift":64}]}}"#
        )
        .is_err());
    }

    #[test]
    fn out_of_bounds_loads_are_rejected_with_a_typed_error() {
        // A load at offset 8 of an 11-byte key reads bytes 8..16 — three
        // bytes past the end. The synthesizer clamps to offset 3; a plan
        // that didn't was corrupted or forged.
        let got = plan_from_str(
            r#"{"FixedWords":{"len":11,"ops":[{"offset":8,"mask":"18446744073709551615","shift":0}]}}"#,
        );
        assert_eq!(
            got,
            Err(SynthError::PlanLoadOutOfBounds {
                offset: 8,
                width: 8,
                key_len: 11
            })
        );
        // Sub-word RQ7 plans stay accepted: one zero-padded load at 0.
        assert!(plan_from_str(
            r#"{"FixedWords":{"len":4,"ops":[{"offset":0,"mask":"255","shift":0}]}}"#
        )
        .is_ok());
        // Block loads are bounded the same way.
        assert!(matches!(
            plan_from_str(r#"{"FixedBlocks":{"len":20,"offsets":[8]}}"#),
            Err(SynthError::PlanLoadOutOfBounds { width: 16, .. })
        ));
        // Variable-length loads must fit the guaranteed minimum.
        assert!(matches!(
            plan_from_str(
                r#"{"VarWords":{"min_len":9,"ops":[{"offset":2,"mask":"18446744073709551615","shift":0}],"tail_start":9}}"#
            ),
            Err(SynthError::PlanLoadOutOfBounds { offset: 2, .. })
        ));
    }

    #[test]
    fn bundle_envelope_is_versioned_and_checksummed() {
        let pattern = crate::regex::Regex::compile(r"\d{3}-\d{2}-\d{4}").unwrap();
        let bundle = SynthBundle {
            plan: crate::synth::synthesize(&pattern, Family::Pext),
            pattern,
            family: Family::Pext,
        };
        let text = bundle_to_string(&bundle);
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.get("version").as_u64(), Some(BUNDLE_VERSION));
        assert!(parsed.get("checksum").as_u64().is_some());

        // Wrong version: typed rejection naming both versions.
        let stale = text.replacen(r#""version":2"#, r#""version":1"#, 1);
        assert_eq!(
            bundle_from_str(&stale),
            Err(SynthError::PlanVersion {
                found: 1,
                supported: BUNDLE_VERSION
            })
        );
        // Missing version (a v1 file): shape rejection, not a guess.
        let unversioned = text.replacen(r#","version":2"#, "", 1);
        assert!(matches!(
            bundle_from_str(&unversioned),
            Err(SynthError::MalformedPlan { .. })
        ));
        // Payload edited without refreshing the checksum.
        let tampered = text.replacen(r#""min_len":11"#, r#""min_len":10"#, 1);
        assert!(matches!(
            bundle_from_str(&tampered),
            Err(SynthError::PlanChecksum { .. })
        ));
    }

    #[test]
    fn semantic_validation_rejects_plans_that_do_not_fit_their_pattern() {
        let pattern = crate::regex::Regex::compile(r"\d{3}-\d{2}-\d{4}").unwrap();
        let good = SynthBundle {
            plan: crate::synth::synthesize(&pattern, Family::Pext),
            pattern: pattern.clone(),
            family: Family::Pext,
        };
        assert_eq!(validate_bundle(&good), Ok(()));

        // A block plan under a word family.
        let wrong_kind = SynthBundle {
            plan: crate::synth::synthesize(&pattern, Family::Aes),
            pattern: pattern.clone(),
            family: Family::OffXor,
        };
        assert!(matches!(
            validate_bundle(&wrong_kind),
            Err(SynthError::PlanPatternMismatch { .. })
        ));

        // A pext mask that selects bits the pattern marks constant (the
        // dashes of an SSN are constant bytes).
        let mut bad_mask = good.clone();
        if let Plan::FixedWords { ops, .. } = &mut bad_mask.plan {
            ops[0].mask |= 0xFF00_0000; // byte 3 is the first '-'
        }
        assert_eq!(
            validate_bundle(&bad_mask),
            Err(SynthError::PlanMaskConstBits)
        );

        // A non-pext word load with a partial mask.
        let mut partial = SynthBundle {
            plan: crate::synth::synthesize(&pattern, Family::OffXor),
            pattern: pattern.clone(),
            family: Family::OffXor,
        };
        if let Plan::FixedWords { ops, .. } = &mut partial.plan {
            ops[0].mask = 0x00FF_FFFF_FFFF_FFFF;
        }
        assert_eq!(
            validate_bundle(&partial),
            Err(SynthError::PlanMaskConstBits)
        );

        // A length that disagrees with the pattern (12, so the loads still
        // fit and the mismatch — not an OOB load — is what's reported).
        let mut long = good;
        if let Plan::FixedWords { len, .. } = &mut long.plan {
            *len = 12;
        }
        assert!(matches!(
            validate_bundle(&long),
            Err(SynthError::PlanPatternMismatch { .. })
        ));
    }

    #[test]
    fn bad_byte_patterns_are_rejected() {
        // Constant bit outside the mask.
        assert!(byte_pattern_from_parts(0x00, 0x01).is_err());
        // Mask not aligned to two-bit lattice groups.
        assert!(byte_pattern_from_parts(0x01, 0x00).is_err());
        // Valid digit byte.
        let p = byte_pattern_from_parts(0xF0, 0x30).unwrap();
        assert_eq!(p.variable_mask(), 0x0F);
    }

    #[test]
    fn bundles_round_trip_for_every_family() {
        let pattern = crate::regex::Regex::compile(r"\d{3}-\d{2}-\d{4}").unwrap();
        for family in Family::ALL {
            let bundle = SynthBundle {
                plan: crate::synth::synthesize(&pattern, family),
                pattern: pattern.clone(),
                family,
            };
            let back = bundle_from_str(&bundle_to_string(&bundle)).unwrap();
            assert_eq!(back, bundle, "{family}");
        }
    }

    #[test]
    fn malformed_bundles_are_rejected() {
        assert!(bundle_from_str("not json").is_err());
        assert!(bundle_from_str(r#"{"pattern":{"bytes":[],"min_len":0}}"#).is_err());
        assert!(bundle_from_str(
            r#"{"pattern":{"bytes":[],"min_len":0},"family":"Md5","plan":"StlFallback"}"#
        )
        .is_err());
    }
}
