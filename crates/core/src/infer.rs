//! Format inference from example keys — the `keybuilder` of Figure 5.
//!
//! Given a set `S` of example keys, SEPE computes the regular expression
//! `f = c₀c₁…cₙ₋₁` where `cᵢ` is the least upper bound, in the
//! quad-semilattice, of the `i`-th bit pair of every key (Section 3.1).
//! Keys shorter than `i` contribute `⊤` at position `i`.
//!
//! The result is deliberately a compromise: specific enough to expose
//! constant bits, general enough to accept keys outside the example set.
//! The caller is responsible for providing *good* examples (Example 3.6):
//! for each quad, every bit combination that can occur at that position
//! should occur in some example.

use crate::pattern::KeyPattern;
use crate::regex::render::render;
use std::fmt;

/// Error returned when inference is attempted on an empty example set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptyExampleSetError;

impl fmt::Display for EmptyExampleSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot infer a key format from zero example keys")
    }
}

impl std::error::Error for EmptyExampleSetError {}

/// Joins every example key in the quad-semilattice, yielding the inferred
/// [`KeyPattern`].
///
/// # Errors
///
/// Returns [`EmptyExampleSetError`] when `keys` yields no items.
///
/// # Examples
///
/// ```
/// use sepe_core::infer::infer_pattern;
///
/// // All-0s and all-5s exercise every digit quad (Example 3.6).
/// let pattern = infer_pattern([&b"000.000.000.000"[..], b"555.555.555.555"])?;
/// assert!(pattern.matches(b"127.000.000.001"));
/// assert!(pattern.bytes()[3].is_const()); // the dots are constant
/// # Ok::<(), sepe_core::infer::EmptyExampleSetError>(())
/// ```
pub fn infer_pattern<'a, I>(keys: I) -> Result<KeyPattern, EmptyExampleSetError>
where
    I: IntoIterator<Item = &'a [u8]>,
{
    let mut iter = keys.into_iter();
    let first = iter.next().ok_or(EmptyExampleSetError)?;
    let mut pattern = KeyPattern::of_key(first);
    for key in iter {
        pattern.join_key(key);
    }
    Ok(pattern)
}

/// [`infer_pattern`] with a cooperative cancellation checkpoint per joined
/// key — the variant the resynthesis supervisor uses when widening a
/// pattern from a large reservoir under a deadline.
///
/// # Errors
///
/// Returns [`crate::hash::SynthError::EmptyExampleSet`] when `keys` yields
/// no items and [`crate::hash::SynthError::Cancelled`] once `token`
/// reports cancellation.
pub fn infer_pattern_with_cancel<'a, I>(
    keys: I,
    token: &crate::supervisor::CancelToken,
) -> Result<KeyPattern, crate::hash::SynthError>
where
    I: IntoIterator<Item = &'a [u8]>,
{
    let mut iter = keys.into_iter();
    let first = iter
        .next()
        .ok_or(crate::hash::SynthError::EmptyExampleSet)?;
    let mut pattern = KeyPattern::of_key(first);
    for key in iter {
        token.check()?;
        pattern.join_key(key);
    }
    Ok(pattern)
}

/// Infers a pattern and renders it as a regular expression — the exact
/// behaviour of the `keybuilder` command-line tool
/// (`keysynth "$(keybuilder < keys.txt)"`, Figure 5a).
///
/// # Errors
///
/// Returns [`EmptyExampleSetError`] when `keys` yields no items.
pub fn infer_regex<'a, I>(keys: I) -> Result<String, EmptyExampleSetError>
where
    I: IntoIterator<Item = &'a [u8]>,
{
    infer_pattern(keys).map(|p| render(&p))
}

/// Diagnostic for one byte position of an inferred pattern, supporting the
/// "good examples" guidance of Example 3.6: for each quad, every possible
/// bit combination should occur in some example, or the inferred format
/// will be narrower than the real one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PositionReport {
    /// Byte position within the key.
    pub position: usize,
    /// Number of distinct byte values observed across the examples.
    pub distinct_examples: usize,
    /// Number of byte values the inferred pattern accepts.
    pub cardinality: u16,
    /// Whether this position looks under-exercised: the examples show more
    /// than one value (so the position varies) but so few that additional
    /// real keys would likely widen the pattern — a risk of rejecting
    /// legitimate keys (and of masks that mis-classify variable bits,
    /// footnote 2 of the paper).
    pub suspicious: bool,
}

/// Analyzes how well a set of example keys exercises each byte position.
///
/// Positions where the examples show 2–3 distinct values are flagged: a
/// single value legitimately means "constant", and four or more spread
/// values usually saturate the quads, but a pair of values rarely covers
/// every bit pair that can vary (Example 3.6 needs e.g. both an all-0s and
/// an all-5s key to cover a digit).
///
/// # Errors
///
/// Returns [`EmptyExampleSetError`] when `keys` yields no items.
pub fn example_quality<'a, I>(keys: I) -> Result<Vec<PositionReport>, EmptyExampleSetError>
where
    I: IntoIterator<Item = &'a [u8]>,
{
    let keys: Vec<&[u8]> = keys.into_iter().collect();
    let pattern = infer_pattern(keys.iter().copied())?;
    let mut reports = Vec::with_capacity(pattern.max_len());
    for (position, byte_pattern) in pattern.bytes().iter().enumerate() {
        let mut seen = [false; 256];
        let mut distinct = 0usize;
        for k in &keys {
            if let Some(&b) = k.get(position) {
                if !seen[b as usize] {
                    seen[b as usize] = true;
                    distinct += 1;
                }
            }
        }
        let cardinality = byte_pattern.cardinality();
        let suspicious = (2..4).contains(&distinct) && cardinality < 256;
        reports.push(PositionReport {
            position,
            distinct_examples: distinct,
            cardinality,
            suspicious,
        });
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_is_an_error() {
        assert_eq!(infer_pattern(std::iter::empty()), Err(EmptyExampleSetError));
    }

    #[test]
    fn single_key_infers_all_literals() {
        let p = infer_pattern([&b"abc"[..]]).unwrap();
        assert!(p.bytes().iter().all(|b| b.is_const()));
        assert!(p.matches(b"abc"));
        assert!(!p.matches(b"abd"));
    }

    #[test]
    fn inferred_pattern_accepts_all_examples() {
        let keys: [&[u8]; 4] = [
            b"123-45-6789",
            b"000-00-0000",
            b"999-99-9999",
            b"555-55-5555",
        ];
        let p = infer_pattern(keys).unwrap();
        for k in keys {
            assert!(p.matches(k), "pattern must accept example {:?}", k);
        }
    }

    #[test]
    fn two_good_examples_suffice_for_ipv4() {
        // Example 3.6: all-0s and all-5s exercise every digit quad.
        let p = infer_pattern([&b"000.000.000.000"[..], b"555.555.555.555"]).unwrap();
        assert!(p.matches(b"192.168.001.001"));
        assert_eq!(p.variable_bits(), 12 * 4);
    }

    #[test]
    fn infer_regex_matches_render() {
        let r = infer_regex([&b"000-00-0000"[..], b"555-55-5555"]).unwrap();
        assert_eq!(r, r"[0-9]{3}-[0-9]{2}-[0-9]{4}");
    }

    #[test]
    fn quality_flags_underexercised_positions() {
        // Two digit examples per Example 3.6: all-0s and all-5s saturate
        // the digit quads, yet still only show 2 distinct bytes; the flag
        // is advisory.
        let reports = example_quality([&b"000"[..], b"555", b"912", b"384"]).unwrap();
        assert_eq!(reports.len(), 3);
        for r in &reports {
            assert_eq!(r.distinct_examples, 4);
            assert!(!r.suspicious);
        }
        // With only two close examples the middle digit looks suspicious.
        let reports = example_quality([&b"101"[..], b"121"]).unwrap();
        assert!(!reports[0].suspicious, "constant position is fine");
        assert!(reports[1].suspicious, "two-value variable position flagged");
        assert_eq!(reports[0].distinct_examples, 1);
        assert_eq!(reports[0].cardinality, 1);
    }

    #[test]
    fn quality_counts_missing_bytes_gracefully() {
        let reports = example_quality([&b"ab"[..], b"abcd"]).unwrap();
        assert_eq!(reports.len(), 4);
        assert_eq!(reports[3].distinct_examples, 1);
        assert_eq!(reports[3].cardinality, 256, "missing bytes join to top");
    }

    #[test]
    fn cancellable_inference_agrees_and_cancels() {
        use crate::supervisor::CancelToken;
        let keys: [&[u8]; 3] = [b"000-00-0000", b"555-55-5555", b"999-99-9999"];
        let token = CancelToken::unbounded();
        assert_eq!(
            infer_pattern_with_cancel(keys, &token).expect("uncancelled"),
            infer_pattern(keys).expect("non-empty")
        );
        token.cancel();
        assert_eq!(
            infer_pattern_with_cancel(keys, &token),
            Err(crate::hash::SynthError::Cancelled)
        );
        assert_eq!(
            infer_pattern_with_cancel(std::iter::empty(), &token),
            Err(crate::hash::SynthError::EmptyExampleSet)
        );
    }

    #[test]
    fn mixed_lengths_infer_min_and_max() {
        let p = infer_pattern([&b"ab"[..], b"abcd"]).unwrap();
        assert_eq!(p.min_len(), 2);
        assert_eq!(p.max_len(), 4);
        assert!(p.matches(b"ab"));
        assert!(p.matches(b"abZZ"));
        assert!(!p.matches(b"a"));
    }
}
