//! Memoized plan cache for the synthesis search.
//!
//! Resynthesis (supervisor deadlines, re-key escalations, drift on a hot
//! container) repeatedly asks for a plan for the *same* key format. The
//! search is deterministic — a given `(pattern, family)` always yields the
//! same [`Plan`] under the same search version — so its result can be
//! memoized. [`PlanCache`] keys entries by a canonical pattern
//! fingerprint, the hash family, and [`SEARCH_VERSION`]; bumping the
//! version when the search algorithm changes invalidates every stale
//! entry without any explicit flush.
//!
//! Plans are independent of the ISA and the seed (those are applied at
//! hash-construction time, not at search time), so one cached plan serves
//! every seed rotation of the same format.
//!
//! The cache is bounded: inserts beyond `capacity` evict the least
//! recently touched entry. Hit/miss/insert/evict counters are kept
//! unconditionally (they are plain relaxed atomics) and can be exported
//! into a [`sepe_obs::Registry`] snapshot via [`PlanCache::export_metrics`].

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::pattern::KeyPattern;
use crate::plan_io;
use crate::synth::{Family, Plan};

/// Version of the candidate-cover search algorithm. Part of every
/// [`CacheKey`]: entries produced by an older search are never returned
/// once the algorithm changes, because their key no longer matches.
pub const SEARCH_VERSION: u32 = 1;

/// Default number of cached plans when no capacity is given.
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

/// 64-bit fingerprint of a pattern's structural content — per-byte
/// `(const_mask, const_bits)` pairs plus `min_len`, the exact fields the
/// canonical [`plan_io`] encoding serializes — so two structurally equal
/// patterns always collide onto one cache entry. Streamed FNV-1a, no
/// allocation: lookups stay cheap even for wide patterns.
#[must_use]
pub fn pattern_fingerprint(pattern: &KeyPattern) -> u64 {
    let mut buf = Vec::with_capacity(pattern.bytes().len() * 2 + 8);
    for b in pattern.bytes() {
        buf.push(b.const_mask());
        buf.push(b.const_bits());
    }
    buf.extend_from_slice(&(pattern.min_len() as u64).to_le_bytes());
    plan_io::fnv1a64(&buf)
}

/// Cache key: pattern fingerprint + family + search version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`pattern_fingerprint`] of the key format.
    pub fingerprint: u64,
    /// Hash family the plan was synthesized for.
    pub family: Family,
    /// [`SEARCH_VERSION`] at insertion time.
    pub search_version: u32,
}

impl CacheKey {
    /// The key under which a `(pattern, family)` search is memoized by
    /// the *current* search version.
    #[must_use]
    pub fn current(pattern: &KeyPattern, family: Family) -> Self {
        CacheKey {
            fingerprint: pattern_fingerprint(pattern),
            family,
            search_version: SEARCH_VERSION,
        }
    }
}

struct CacheInner {
    entries: HashMap<CacheKey, (Plan, u64)>,
    /// Monotonic touch stamp for LRU ordering.
    tick: u64,
}

/// Bounded, thread-safe memoization of synthesis results.
///
/// Lookups and inserts take a single short mutex; eviction is an `O(n)`
/// scan for the minimum stamp, which is fine at the double-digit
/// capacities resynthesis needs (one entry per live key format).
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
    hits: sepe_obs::Counter,
    misses: sepe_obs::Counter,
    insertions: sepe_obs::Counter,
    evictions: sepe_obs::Counter,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (clamped to at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity: capacity.max(1),
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                tick: 0,
            }),
            hits: sepe_obs::Counter::default(),
            misses: sepe_obs::Counter::default(),
            insertions: sepe_obs::Counter::default(),
            evictions: sepe_obs::Counter::default(),
        }
    }

    /// A cache with [`DEFAULT_CACHE_CAPACITY`] slots.
    #[must_use]
    pub fn with_default_capacity() -> Self {
        PlanCache::new(DEFAULT_CACHE_CAPACITY)
    }

    /// Looks up the memoized plan for `(pattern, family)` under the
    /// current [`SEARCH_VERSION`], refreshing its LRU stamp on a hit.
    #[must_use]
    pub fn lookup(&self, pattern: &KeyPattern, family: Family) -> Option<Plan> {
        let key = CacheKey::current(pattern, family);
        let mut inner = self
            .inner
            .lock()
            .expect("plan cache lock is never poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(&key) {
            Some((plan, stamp)) => {
                *stamp = tick;
                let plan = plan.clone();
                drop(inner);
                self.hits.inc();
                Some(plan)
            }
            None => {
                drop(inner);
                self.misses.inc();
                None
            }
        }
    }

    /// Memoizes `plan` for `(pattern, family)`, evicting the least
    /// recently touched entry when the cache is full.
    pub fn insert(&self, pattern: &KeyPattern, family: Family, plan: Plan) {
        let key = CacheKey::current(pattern, family);
        let mut inner = self
            .inner
            .lock()
            .expect("plan cache lock is never poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.entries.contains_key(&key) && inner.entries.len() >= self.capacity {
            let lru = inner
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| *k)
                .expect("full cache has a least-recent entry");
            inner.entries.remove(&lru);
            self.evictions.inc();
        }
        inner.entries.insert(key, (plan, tick));
        drop(inner);
        self.insertions.inc();
    }

    /// Number of cached plans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("plan cache lock is never poisoned")
            .entries
            .len()
    }

    /// Whether the cache holds no plans.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup hits since construction.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Lookup misses since construction.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Plans inserted since construction.
    #[must_use]
    pub fn insertions(&self) -> u64 {
        self.insertions.get()
    }

    /// Entries evicted by the LRU bound since construction.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }

    /// Registers `plan_cache_{hits,misses,insertions,evictions,entries}`
    /// in `registry`; values are read live at snapshot time.
    ///
    /// # Errors
    ///
    /// Propagates [`sepe_obs::RegistryError`] on duplicate registration.
    pub fn export_metrics(
        self: &Arc<Self>,
        registry: &sepe_obs::Registry,
    ) -> Result<(), sepe_obs::RegistryError> {
        let cache = self.clone();
        registry.export_counter("plan_cache_hits", &[], move || cache.hits())?;
        let cache = self.clone();
        registry.export_counter("plan_cache_misses", &[], move || cache.misses())?;
        let cache = self.clone();
        registry.export_counter("plan_cache_insertions", &[], move || cache.insertions())?;
        let cache = self.clone();
        registry.export_counter("plan_cache_evictions", &[], move || cache.evictions())?;
        let cache = self.clone();
        registry.export_counter("plan_cache_entries", &[], move || cache.len() as u64)?;
        Ok(())
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;
    use crate::synth::synthesize;

    fn pattern(re: &str) -> KeyPattern {
        Regex::compile(re).expect("test regex compiles")
    }

    #[test]
    fn hit_returns_the_inserted_plan() {
        let cache = PlanCache::new(8);
        let p = pattern(r"[0-9]{3}-[0-9]{2}-[0-9]{4}");
        assert_eq!(cache.lookup(&p, Family::Pext), None);
        let plan = synthesize(&p, Family::Pext);
        cache.insert(&p, Family::Pext, plan.clone());
        assert_eq!(cache.lookup(&p, Family::Pext), Some(plan));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn structurally_equal_patterns_share_an_entry() {
        let cache = PlanCache::new(8);
        let a = pattern(r"[0-9]{20}");
        let b = pattern(r"[0-9]{20}");
        cache.insert(&a, Family::Naive, synthesize(&a, Family::Naive));
        assert!(cache.lookup(&b, Family::Naive).is_some());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn families_do_not_alias() {
        let cache = PlanCache::new(8);
        let p = pattern(r"[0-9]{20}");
        cache.insert(&p, Family::Naive, synthesize(&p, Family::Naive));
        assert_eq!(cache.lookup(&p, Family::Pext), None);
    }

    #[test]
    fn lru_eviction_drops_the_coldest_entry() {
        let cache = PlanCache::new(2);
        let a = pattern(r"[0-9]{8}");
        let b = pattern(r"[0-9]{12}");
        let c = pattern(r"[0-9]{16}");
        cache.insert(&a, Family::Naive, synthesize(&a, Family::Naive));
        cache.insert(&b, Family::Naive, synthesize(&b, Family::Naive));
        // Touch `a` so `b` becomes the LRU victim.
        assert!(cache.lookup(&a, Family::Naive).is_some());
        cache.insert(&c, Family::Naive, synthesize(&c, Family::Naive));
        assert_eq!(cache.evictions(), 1);
        assert!(cache.lookup(&a, Family::Naive).is_some());
        assert_eq!(cache.lookup(&b, Family::Naive), None);
        assert!(cache.lookup(&c, Family::Naive).is_some());
    }

    #[test]
    fn reinsert_updates_in_place_without_eviction() {
        let cache = PlanCache::new(1);
        let p = pattern(r"[0-9]{8}");
        let plan = synthesize(&p, Family::Naive);
        cache.insert(&p, Family::Naive, plan.clone());
        cache.insert(&p, Family::Naive, plan);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.insertions(), 2);
    }

    #[test]
    fn metrics_export_snapshots_live_values() {
        let cache = Arc::new(PlanCache::new(4));
        let registry = sepe_obs::Registry::new();
        cache
            .export_metrics(&registry)
            .expect("first export succeeds");
        let p = pattern(r"[0-9]{10}");
        assert_eq!(cache.lookup(&p, Family::OffXor), None);
        cache.insert(&p, Family::OffXor, synthesize(&p, Family::OffXor));
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("plan_cache_misses"), Some(1));
        assert_eq!(snapshot.counter("plan_cache_insertions"), Some(1));
        assert_eq!(snapshot.counter("plan_cache_entries"), Some(1));
        // Double registration is rejected, mirroring the supervisor.
        assert!(cache.export_metrics(&registry).is_err());
    }
}
