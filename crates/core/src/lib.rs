//! # sepe-core
//!
//! A from-scratch Rust implementation of **SEPE** — *Automatic Synthesis of
//! Specialized Hash Functions* (CGO 2025). SEPE generates hash functions
//! specialized to particular byte formats, exploiting three constraints
//! (Figure 3 of the paper):
//!
//! * **length** — fixed-length keys allow fully unrolled loads;
//! * **const** — constant subsequences at fixed positions can be skipped;
//! * **range** — bytes ranging over restricted value sets have constant
//!   *bits*, removable with parallel bit extraction (`pext`).
//!
//! ## Pipeline
//!
//! 1. [`infer`] joins example keys in the quad-semilattice of [`lattice`]
//!    (or [`regex`] compiles a user-written expression) into a
//!    [`pattern::KeyPattern`];
//! 2. [`synth`] turns the pattern into a [`synth::Plan`] — the loads, masks
//!    and shifts of the specialized function;
//! 3. [`hash::SynthesizedHash`] executes the plan directly, and
//!    [`codegen`] emits equivalent C++ or Rust source.
//!
//! ## Quick start
//!
//! ```
//! use sepe_core::hash::{ByteHash, SynthesizedHash};
//! use sepe_core::synth::Family;
//!
//! // From examples (Figure 5a)...
//! let examples: [&[u8]; 2] = [b"000.000.000.000", b"555.255.912.803"];
//! let hash = SynthesizedHash::from_examples(examples, Family::Pext)?;
//! assert_ne!(
//!     hash.hash_bytes(b"192.168.000.001"),
//!     hash.hash_bytes(b"192.168.000.002"),
//! );
//!
//! // ...or from a regular expression (Figure 5b).
//! let hash = SynthesizedHash::from_regex(r"(([0-9]{3})\.){3}[0-9]{3}", Family::OffXor)?;
//! let _ = hash.hash_bytes(b"010.020.030.040");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod aes;
pub mod bits;
pub mod cache;
pub mod codegen;
pub mod guard;
pub mod hash;
pub mod infer;
pub mod lattice;
pub mod multi;
pub mod pattern;
pub mod plan_io;
pub mod regex;
pub mod supervisor;
pub mod synth;

pub use bits::Isa;
pub use cache::{pattern_fingerprint, PlanCache, SEARCH_VERSION};
pub use guard::{FormatGuard, GuardMode, GuardedHash, Resynth};
pub use hash::{ByteHash, HashBatch, SynthError, SynthesizedHash};
pub use pattern::{BytePattern, KeyPattern};
pub use supervisor::{
    CancelToken, Clock, MockClock, ReadyPlan, ResynthSupervisor, SupervisorConfig, SynthRequest,
    SystemClock,
};
pub use synth::{
    synthesize, synthesize_parallel, synthesize_parallel_with_stats, Family, Plan, SearchStats,
};
