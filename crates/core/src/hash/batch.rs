//! Batch hashing: many keys in, many hashes out, per call.
//!
//! Production tables do lookups in batches, not singles, and hashing one
//! key at a time leaves most of the load ports of a modern core idle: a
//! synthesized fixed-word plan is a short dependency chain of loads and
//! xors, so its latency — not its throughput — bounds a scalar loop.
//! [`HashBatch`] extends [`ByteHash`] with a batched entry point, and the
//! kernels in this module evaluate the *same* plan over `W` independent
//! keys with the loop order inverted (operations outer, lanes inner), the
//! multi-stream schedule of HighwayHash: every iteration issues `W`
//! independent loads, so the out-of-order window fills the load ports
//! instead of waiting on one chain.
//!
//! Every kernel computes bit-for-bit the hashes of the scalar
//! [`ByteHash::hash_bytes`] path (xor is commutative, so reassociating
//! per-lane is exact); `sepe-verify --suite batch` and the proptests in
//! `crates/verify` enforce the equivalence against the plan interpreter.

use crate::bits::{load_u64_le, pext_soft};
use crate::synth::WordOp;

/// A hash function that can evaluate a whole batch of keys per call.
///
/// The default implementation is the scalar loop; specialized
/// implementations ([`crate::SynthesizedHash`],
/// [`crate::guard::GuardedHash`]) override it with interleaved kernels.
/// Either way the results are identical to calling
/// [`ByteHash::hash_bytes`] per key — batching is an execution schedule,
/// never a different function.
///
/// # Examples
///
/// ```
/// use sepe_core::hash::{ByteHash, HashBatch, SynthesizedHash};
/// use sepe_core::synth::Family;
///
/// let hash = SynthesizedHash::from_regex(r"\d{3}-\d{2}-\d{4}", Family::Pext)?;
/// let keys: [&[u8]; 3] = [b"123-45-6789", b"000-00-0000", b"999-99-9999"];
/// let mut out = [0u64; 3];
/// hash.hash_batch(&keys, &mut out);
/// for (key, h) in keys.iter().zip(out) {
///     assert_eq!(h, hash.hash_bytes(key));
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub trait HashBatch: ByteHash {
    /// Hashes `keys[i]` into `out[i]` for every `i`.
    ///
    /// # Panics
    ///
    /// Panics if `keys.len() != out.len()`.
    fn hash_batch(&self, keys: &[&[u8]], out: &mut [u64]) {
        assert_eq!(keys.len(), out.len(), "batch output length mismatch");
        for (key, slot) in keys.iter().zip(out.iter_mut()) {
            *slot = self.hash_bytes(key);
        }
    }
}

use crate::hash::ByteHash;

// The forwarding impls delegate to the inner `hash_batch`, not to the
// default body — going through the default body would silently fall back
// to the scalar loop on `Box<dyn HashBatch>` and `&H`.

impl<T: HashBatch + ?Sized> HashBatch for &T {
    fn hash_batch(&self, keys: &[&[u8]], out: &mut [u64]) {
        (**self).hash_batch(keys, out);
    }
}

impl<T: HashBatch + ?Sized> HashBatch for Box<T> {
    fn hash_batch(&self, keys: &[&[u8]], out: &mut [u64]) {
        (**self).hash_batch(keys, out);
    }
}

impl<T: HashBatch + ?Sized> HashBatch for std::sync::Arc<T> {
    fn hash_batch(&self, keys: &[&[u8]], out: &mut [u64]) {
        (**self).hash_batch(keys, out);
    }
}

/// The first byte past the furthest word load of `ops`, or `None` for an
/// empty op list. When every key in a batch is at least this long, all
/// loads are fully in range and the zero-padding branch of
/// [`load_u64_le`] can be skipped.
#[inline]
fn loads_end(ops: &[WordOp]) -> Option<usize> {
    ops.iter().map(|op| op.offset as usize + 8).max()
}

/// One unaligned little-endian word, no range check.
///
/// # Safety
///
/// `offset + 8 <= key.len()` must hold.
#[inline]
unsafe fn load_u64_le_unchecked(key: &[u8], offset: usize) -> u64 {
    debug_assert!(offset + 8 <= key.len());
    u64::from_le(unsafe { key.as_ptr().add(offset).cast::<u64>().read_unaligned() })
}

/// Interleaved xor kernel (Naive / OffXor): `W` lanes advance through the
/// op list together, so each op issues `W` independent loads.
///
/// When every lane covers the furthest load — always true for in-format
/// keys of a fixed-length plan, whose offsets are clamped to `len - 8` —
/// the loads are branch-free; otherwise the zero-padding
/// [`load_u64_le`] handles short keys.
#[inline]
pub(crate) fn xor_lanes<const W: usize>(
    seed: u64,
    ops: &[WordOp],
    keys: &[&[u8]],
    out: &mut [u64],
) {
    debug_assert!(keys.len() == W && out.len() == W);
    let mut h = [seed; W];
    if let Some(end) = loads_end(ops) {
        if keys.iter().all(|k| k.len() >= end) {
            for op in ops {
                let off = op.offset as usize;
                let rot = u32::from(op.shift);
                for lane in 0..W {
                    // SAFETY: every lane was checked to hold `end >= off + 8` bytes.
                    let w = unsafe { load_u64_le_unchecked(keys[lane], off) };
                    h[lane] ^= w.rotate_left(rot);
                }
            }
            out.copy_from_slice(&h);
            return;
        }
    }
    for op in ops {
        let off = op.offset as usize;
        let rot = u32::from(op.shift);
        for lane in 0..W {
            h[lane] ^= load_u64_le(keys[lane], off).rotate_left(rot);
        }
    }
    out.copy_from_slice(&h);
}

/// Interleaved portable-pext kernel.
#[inline]
pub(crate) fn pext_soft_lanes<const W: usize>(
    seed: u64,
    ops: &[WordOp],
    keys: &[&[u8]],
    out: &mut [u64],
) {
    debug_assert!(keys.len() == W && out.len() == W);
    let mut h = [seed; W];
    for op in ops {
        let off = op.offset as usize;
        for lane in 0..W {
            let w = load_u64_le(keys[lane], off);
            h[lane] ^= pext_soft(w, op.mask) << op.shift;
        }
    }
    out.copy_from_slice(&h);
}

/// Interleaved hardware-pext kernel: one `pext` per lane per op, all `W`
/// extractions independent.
///
/// # Safety
///
/// The caller must have verified BMI2 support.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "bmi2")]
pub(crate) unsafe fn pext_hw_lanes<const W: usize>(
    seed: u64,
    ops: &[WordOp],
    keys: &[&[u8]],
    out: &mut [u64],
) {
    use std::arch::x86_64::_pext_u64;
    debug_assert!(keys.len() == W && out.len() == W);
    let mut h = [seed; W];
    if let Some(end) = loads_end(ops) {
        if keys.iter().all(|k| k.len() >= end) {
            for op in ops {
                let off = op.offset as usize;
                for lane in 0..W {
                    // SAFETY: every lane was checked to hold `end >= off + 8` bytes.
                    let w = unsafe { load_u64_le_unchecked(keys[lane], off) };
                    h[lane] ^= _pext_u64(w, op.mask) << op.shift;
                }
            }
            out.copy_from_slice(&h);
            return;
        }
    }
    for op in ops {
        let off = op.offset as usize;
        for lane in 0..W {
            let w = load_u64_le(keys[lane], off);
            h[lane] ^= _pext_u64(w, op.mask) << op.shift;
        }
    }
    out.copy_from_slice(&h);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::SynthesizedHash;
    use crate::synth::Family;

    struct Plain;
    impl ByteHash for Plain {
        fn hash_bytes(&self, key: &[u8]) -> u64 {
            key.len() as u64
        }
    }
    impl HashBatch for Plain {}

    #[test]
    fn default_body_is_the_scalar_loop() {
        let keys: [&[u8]; 3] = [b"a", b"bb", b"ccc"];
        let mut out = [0u64; 3];
        Plain.hash_batch(&keys, &mut out);
        assert_eq!(out, [1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "batch output length mismatch")]
    fn mismatched_lengths_panic() {
        let keys: [&[u8]; 2] = [b"a", b"b"];
        let mut out = [0u64; 3];
        Plain.hash_batch(&keys, &mut out);
    }

    #[test]
    fn forwarding_impls_reach_the_specialized_kernels() {
        let hash = SynthesizedHash::from_regex(r"\d{3}-\d{2}-\d{4}", Family::OffXor).unwrap();
        let keys: Vec<Vec<u8>> = (0..16)
            .map(|i| format!("{:03}-{:02}-{:04}", i, i % 97, i * 7).into_bytes())
            .collect();
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let mut direct = vec![0u64; refs.len()];
        hash.hash_batch(&refs, &mut direct);

        let boxed: Box<dyn HashBatch> = Box::new(hash.clone());
        let mut through_box = vec![0u64; refs.len()];
        boxed.hash_batch(&refs, &mut through_box);
        assert_eq!(direct, through_box);

        let arc = std::sync::Arc::new(hash);
        let mut through_arc = vec![0u64; refs.len()];
        arc.hash_batch(&refs, &mut through_arc);
        assert_eq!(direct, through_arc);
    }

    #[test]
    fn kernels_match_scalar_on_every_family_and_width() {
        for family in Family::ALL {
            let hash = SynthesizedHash::from_regex(r"(([0-9]{3})\.){3}[0-9]{3}", family).unwrap();
            let keys: Vec<Vec<u8>> = (0..37)
                .map(|i: u32| {
                    format!(
                        "{:03}.{:03}.{:03}.{:03}",
                        i % 256,
                        i * 3 % 256,
                        i,
                        i * 7 % 256
                    )
                    .into_bytes()
                })
                .collect();
            let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
            for width in [1usize, 3, 4, 7, 8, 13, 37] {
                let batch = &refs[..width];
                let mut out = vec![0u64; width];
                hash.hash_batch(batch, &mut out);
                for (key, h) in batch.iter().zip(&out) {
                    assert_eq!(*h, hash.hash_bytes(key), "{family} width {width}");
                }
            }
        }
    }
}
