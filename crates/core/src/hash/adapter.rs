//! Bridging [`ByteHash`] to `std::hash`, so a synthesized function drops
//! into `std::collections::HashMap` the way SEPE's C++ functors drop into
//! `std::unordered_map` (Figure 5d of the paper).

use crate::hash::ByteHash;
use std::hash::{BuildHasher, Hasher};
use std::sync::Arc;

/// A [`BuildHasher`] that routes every hashed value through a [`ByteHash`].
///
/// The produced [`Hasher`] buffers the bytes written by `Hash::hash` and
/// applies the byte hash in `finish`. Note that `std` feeds `&str`/`String`
/// keys through `Hash` with a trailing `0xFF` marker byte; the synthesized
/// plans tolerate the extra byte (loads never read past their offsets), but
/// the hash value differs from calling [`ByteHash::hash_bytes`] directly.
/// Measurements in this repository always call `hash_bytes`.
///
/// # Examples
///
/// ```
/// use sepe_core::hash::adapter::SepeBuildHasher;
/// use sepe_core::hash::SynthesizedHash;
/// use sepe_core::synth::Family;
/// use std::collections::HashMap;
///
/// let hash = SynthesizedHash::from_regex(r"(([0-9]{3})\.){3}[0-9]{3}", Family::Pext)?;
/// let mut map: HashMap<String, u32, _> = HashMap::with_hasher(SepeBuildHasher::new(hash));
/// map.insert("192.168.000.001".to_owned(), 1);
/// assert_eq!(map.get("192.168.000.001"), Some(&1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct SepeBuildHasher<H> {
    inner: Arc<H>,
}

impl<H: ByteHash> SepeBuildHasher<H> {
    /// Wraps a byte hash for use with `std` collections.
    pub fn new(hash: H) -> Self {
        SepeBuildHasher {
            inner: Arc::new(hash),
        }
    }

    /// The wrapped byte hash.
    #[must_use]
    pub fn inner(&self) -> &H {
        &self.inner
    }
}

impl<H: ByteHash> BuildHasher for SepeBuildHasher<H> {
    type Hasher = SepeHasher<H>;

    fn build_hasher(&self) -> Self::Hasher {
        SepeHasher {
            inner: Arc::clone(&self.inner),
            buf: Vec::new(),
        }
    }
}

/// The streaming [`Hasher`] produced by [`SepeBuildHasher`]; buffers writes
/// and defers to the byte hash on `finish`.
#[derive(Debug)]
pub struct SepeHasher<H> {
    inner: Arc<H>,
    buf: Vec<u8>,
}

impl<H: ByteHash> Hasher for SepeHasher<H> {
    fn finish(&self) -> u64 {
        self.inner.hash_bytes(&self.buf)
    }

    fn write(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::SynthesizedHash;
    use crate::synth::Family;
    use std::collections::{HashMap, HashSet};

    fn build() -> SepeBuildHasher<SynthesizedHash> {
        let hash =
            SynthesizedHash::from_regex(r"\d{3}-\d{2}-\d{4}", Family::Pext).expect("ssn regex");
        SepeBuildHasher::new(hash)
    }

    #[test]
    fn hash_map_inserts_and_finds() {
        let mut map: HashMap<String, u32, _> = HashMap::with_hasher(build());
        for i in 0..1000u32 {
            map.insert(format!("{:03}-{:02}-{:04}", i % 500, i % 100, i), i);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map.get("000-00-0000"), Some(&0));
        assert_eq!(map.get("123-23-0123"), Some(&123));
        assert_eq!(map.get("999-99-9999"), None);
        assert_eq!(map.remove("000-00-0000"), Some(0));
        assert_eq!(map.len(), 999);
    }

    #[test]
    fn hash_set_deduplicates() {
        let mut set: HashSet<String, _> = HashSet::with_hasher(build());
        assert!(set.insert("123-45-6789".to_owned()));
        assert!(!set.insert("123-45-6789".to_owned()));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn hasher_is_consistent_across_builds() {
        let bh = build();
        let mut a = bh.build_hasher();
        let mut b = bh.build_hasher();
        std::hash::Hash::hash("123-45-6789", &mut a);
        std::hash::Hash::hash("123-45-6789", &mut b);
        assert_eq!(a.finish(), b.finish());
    }
}
