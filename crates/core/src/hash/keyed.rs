//! Keyed hashing primitives for the HashDoS escalation ladder.
//!
//! The paper scopes synthesized hashes to settings "where an adversary is
//! not expected to force collisions" (Section 1). When that assumption
//! fails — `tests/adversarial.rs` forges deterministic bucket floods
//! against the linear xor-combining families, and even the CityHash
//! fallback is unkeyed and therefore floodable by an adversary holding the
//! binary — the containers escalate to a *secret-keyed* hash. This module
//! provides that last line of defense:
//!
//! * [`siphash13`] — SipHash-1-3, the reduced-round keyed PRF used by the
//!   Rust and Python standard libraries for exactly this purpose;
//! * [`SeedSource`] — where the 128-bit keys come from, with an injectable
//!   deterministic source ([`FixedSeedSource`]) for tests and a
//!   best-effort entropy source ([`EntropySeedSource`]) for production.

use std::sync::atomic::{AtomicU64, Ordering};

/// SipHash-1-3: one compression round per word, three finalization rounds.
///
/// The construction follows Aumasson & Bernstein's SipHash paper with the
/// round counts the Rust standard library settled on for its default
/// hasher. Unlike the synthesized families and the CityHash fallback, the
/// output is keyed by `(k0, k1)`: without the 128-bit secret an adversary
/// cannot precompute colliding inputs, which is the property the
/// escalation ladder buys when a collision storm is detected.
///
/// # Examples
///
/// ```
/// use sepe_core::hash::keyed::siphash13;
///
/// let a = siphash13(1, 2, b"198.51.100.7");
/// let b = siphash13(1, 2, b"198.51.100.7");
/// let c = siphash13(3, 4, b"198.51.100.7");
/// assert_eq!(a, b);
/// assert_ne!(a, c); // different key, different codes
/// ```
pub fn siphash13(k0: u64, k1: u64, data: &[u8]) -> u64 {
    siphash::<1, 3>(k0, k1, data)
}

/// Round-parameterized SipHash core: `C` compression rounds per message
/// word, `D` finalization rounds. Kept private — callers use
/// [`siphash13`]; the 2-4 instantiation exists so the tests can pin the
/// round function against the canonical SipHash-2-4 vectors.
fn siphash<const C: usize, const D: usize>(k0: u64, k1: u64, data: &[u8]) -> u64 {
    let mut v0 = k0 ^ 0x736f_6d65_7073_6575;
    let mut v1 = k1 ^ 0x646f_7261_6e64_6f6d;
    let mut v2 = k0 ^ 0x6c79_6765_6e65_7261;
    let mut v3 = k1 ^ 0x7465_6462_7974_6573;

    macro_rules! sipround {
        () => {
            v0 = v0.wrapping_add(v1);
            v1 = v1.rotate_left(13);
            v1 ^= v0;
            v0 = v0.rotate_left(32);
            v2 = v2.wrapping_add(v3);
            v3 = v3.rotate_left(16);
            v3 ^= v2;
            v0 = v0.wrapping_add(v3);
            v3 = v3.rotate_left(21);
            v3 ^= v0;
            v2 = v2.wrapping_add(v1);
            v1 = v1.rotate_left(17);
            v1 ^= v2;
            v2 = v2.rotate_left(32);
        };
    }

    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("chunks_exact(8) yields 8 bytes"));
        v3 ^= m;
        for _ in 0..C {
            sipround!();
        }
        v0 ^= m;
    }

    // Final block: remaining bytes little-endian, length in the top byte.
    let tail = chunks.remainder();
    let mut b = (data.len() as u64) << 56;
    for (i, &byte) in tail.iter().enumerate() {
        b |= u64::from(byte) << (8 * i);
    }
    v3 ^= b;
    for _ in 0..C {
        sipround!();
    }
    v0 ^= b;

    v2 ^= 0xff;
    for _ in 0..D {
        sipround!();
    }

    v0 ^ v1 ^ v2 ^ v3
}

/// A source of 128-bit seeds for the keyed escalation rungs.
///
/// Takes `&self` so a source can be consulted through the shared
/// references the sharded containers hand out; implementations use
/// interior mutability to advance their state.
pub trait SeedSource {
    /// Returns the next `(k0, k1)` key pair.
    ///
    /// Consecutive calls must return distinct pairs with overwhelming
    /// probability — seed *rotation* depends on a fresh key actually
    /// changing the hash function.
    fn next_seed(&self) -> (u64, u64);
}

impl<T: SeedSource + ?Sized> SeedSource for &T {
    fn next_seed(&self) -> (u64, u64) {
        (**self).next_seed()
    }
}

/// Deterministic seed source for tests and reproducible harness runs.
///
/// Expands a single `u64` seed through a splitmix64 stream, so a harness
/// seeded with the same value observes the same escalation keys on every
/// run.
///
/// # Examples
///
/// ```
/// use sepe_core::hash::keyed::{FixedSeedSource, SeedSource};
///
/// let a = FixedSeedSource::new(42);
/// let b = FixedSeedSource::new(42);
/// assert_eq!(a.next_seed(), b.next_seed());
/// assert_ne!(a.next_seed(), a.next_seed()); // stream advances
/// ```
#[derive(Debug)]
pub struct FixedSeedSource {
    state: AtomicU64,
}

impl FixedSeedSource {
    /// Creates a source whose stream is fully determined by `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            state: AtomicU64::new(seed),
        }
    }

    fn next_u64(&self) -> u64 {
        // splitmix64: a full-period 2^64 stream, so the pair below can
        // only repeat after 2^63 rotations.
        let z = self
            .state
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        let z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedSource for FixedSeedSource {
    fn next_seed(&self) -> (u64, u64) {
        (self.next_u64(), self.next_u64())
    }
}

/// Best-effort entropy source for production seeding.
///
/// Mixes the system clock, a stack address (ASLR jitter) and a global
/// counter through a strong 64-bit finalizer. This is **not** a CSPRNG —
/// the repository has no OS-entropy dependency — but it denies the
/// precomputation attack the ladder defends against: the adversary would
/// have to guess nanosecond-resolution boot timing and the process's
/// address-space layout to reconstruct the key.
#[derive(Debug, Default)]
pub struct EntropySeedSource {
    _private: (),
}

/// Distinguishes seeds drawn by concurrent callers in the same nanosecond.
static ENTROPY_COUNTER: AtomicU64 = AtomicU64::new(0);

impl EntropySeedSource {
    /// Creates an entropy-backed source.
    pub fn new() -> Self {
        Self::default()
    }

    fn sample(&self) -> u64 {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let stack_probe = 0u8;
        let addr = std::ptr::addr_of!(stack_probe) as u64;
        let count = ENTROPY_COUNTER.fetch_add(1, Ordering::Relaxed);
        let mut h = nanos ^ addr.rotate_left(32) ^ count.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        // fmix64 (murmur3 finalizer): full avalanche over the mixed word.
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        h ^= h >> 33;
        h
    }
}

impl SeedSource for EntropySeedSource {
    fn next_seed(&self) -> (u64, u64) {
        (self.sample(), self.sample())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Canonical SipHash-2-4 vectors from Aumasson & Bernstein's reference
    /// implementation: key = `00 01 .. 0f`, inputs `00 01 ..` of
    /// increasing length. The 1-3 variant shares the round function, so
    /// pinning 2-4 pins the compression/finalization core.
    #[test]
    fn sipround_core_matches_siphash24_reference_vectors() {
        let k0 = u64::from_le_bytes([0, 1, 2, 3, 4, 5, 6, 7]);
        let k1 = u64::from_le_bytes([8, 9, 10, 11, 12, 13, 14, 15]);
        let expected: [u64; 8] = [
            0x726f_db47_dd0e_0e31,
            0x74f8_39c5_93dc_67fd,
            0x0d6c_8009_d9a9_4f5a,
            0x8567_6696_d7fb_7e2d,
            0xcf27_94e0_2771_87b7,
            0x1876_5564_cd99_a68d,
            0xcbc9_466e_58fe_e3ce,
            0xab02_00f5_8b01_d137,
        ];
        let input: Vec<u8> = (0u8..8).collect();
        for (len, want) in expected.iter().enumerate() {
            assert_eq!(
                siphash::<2, 4>(k0, k1, &input[..len]),
                *want,
                "vector mismatch at len {len}"
            );
        }
    }

    #[test]
    fn siphash13_is_keyed() {
        let key = b"123-45-6789";
        let a = siphash13(0xDEAD, 0xBEEF, key);
        let b = siphash13(0xDEAD, 0xBEF0, key);
        assert_ne!(a, b);
    }

    #[test]
    fn siphash13_handles_all_tail_lengths() {
        let data: Vec<u8> = (0u8..32).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..=data.len() {
            assert!(seen.insert(siphash13(7, 11, &data[..len])));
        }
    }

    #[test]
    fn fixed_source_is_deterministic_and_advances() {
        let a = FixedSeedSource::new(0x5E9E);
        let b = FixedSeedSource::new(0x5E9E);
        let s1 = a.next_seed();
        assert_eq!(s1, b.next_seed());
        assert_ne!(s1, a.next_seed());
    }

    #[test]
    fn entropy_source_yields_distinct_seeds() {
        let src = EntropySeedSource::new();
        let a = src.next_seed();
        let b = src.next_seed();
        assert_ne!(a, b);
    }

    #[test]
    fn seed_source_works_through_references() {
        fn draw(src: &dyn SeedSource) -> (u64, u64) {
            src.next_seed()
        }
        let src = FixedSeedSource::new(1);
        let via_dyn = draw(&src);
        let direct = FixedSeedSource::new(1).next_seed();
        assert_eq!(via_dyn, direct);
    }
}
