//! A faithful port of the murmur-derived `_Hash_bytes` of libstdc++
//! (Figure 1 of the paper) — the "STL" baseline, and the function SEPE
//! falls back to for keys shorter than eight bytes.

/// The multiplier of Figure 1, Line 2: `(0xc6a4a793 << 32) + 0x5bd1e995`.
pub const MUL: u64 = 0xc6a4_a793_5bd1_e995;

/// The seed libstdc++ passes to `_Hash_bytes` for `std::hash<std::string>`.
pub const DEFAULT_STL_SEED: u64 = 0xc70f_6907;

#[inline]
fn shift_mix(v: u64) -> u64 {
    v ^ (v >> 47)
}

/// Loads `n < 8` trailing bytes, little-endian, zero-padded — the
/// `load_bytes` helper of Figure 1, Line 13.
#[inline]
fn load_partial(bytes: &[u8]) -> u64 {
    debug_assert!(bytes.len() < 8);
    let mut buf = [0u8; 8];
    buf[..bytes.len()].copy_from_slice(bytes);
    u64::from_le_bytes(buf)
}

/// Hashes `key` exactly as Figure 1 of the paper (libstdc++
/// `hash_bytes.cc:138`): eight bytes at a time through a multiply/shift-mix
/// loop, a partial tail load, then two finalization rounds.
///
/// # Examples
///
/// ```
/// use sepe_core::hash::{stl_hash_bytes, DEFAULT_STL_SEED};
///
/// let h = stl_hash_bytes(b"192.168.000.001", DEFAULT_STL_SEED);
/// assert_ne!(h, stl_hash_bytes(b"192.168.000.002", DEFAULT_STL_SEED));
/// ```
#[must_use]
pub fn stl_hash_bytes(key: &[u8], seed: u64) -> u64 {
    let len = key.len();
    let len_aligned = len & !0x7;
    let mut hash = seed ^ (len as u64).wrapping_mul(MUL);
    for chunk in key[..len_aligned].chunks_exact(8) {
        let word = u64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
        let data = shift_mix(word.wrapping_mul(MUL)).wrapping_mul(MUL);
        hash ^= data;
        hash = hash.wrapping_mul(MUL);
    }
    if len & 0x7 != 0 {
        let data = load_partial(&key[len_aligned..]);
        hash ^= data;
        hash = hash.wrapping_mul(MUL);
    }
    hash = shift_mix(hash).wrapping_mul(MUL);
    shift_mix(hash)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(
            stl_hash_bytes(b"hello world", 1),
            stl_hash_bytes(b"hello world", 1)
        );
    }

    #[test]
    fn seed_changes_the_hash() {
        assert_ne!(stl_hash_bytes(b"hello", 1), stl_hash_bytes(b"hello", 2));
    }

    #[test]
    fn empty_key_hashes() {
        // len = 0: no loop, no tail, just finalization of the seed.
        let h = stl_hash_bytes(b"", DEFAULT_STL_SEED);
        assert_eq!(h, shift_mix(shift_mix(DEFAULT_STL_SEED).wrapping_mul(MUL)));
    }

    #[test]
    fn tail_bytes_affect_the_hash() {
        // Nine bytes: one full word plus a one-byte tail.
        assert_ne!(
            stl_hash_bytes(b"12345678a", 0),
            stl_hash_bytes(b"12345678b", 0)
        );
    }

    #[test]
    fn length_affects_the_hash() {
        assert_ne!(stl_hash_bytes(b"abc", 0), stl_hash_bytes(b"abc\0", 0));
    }

    #[test]
    fn no_trivial_collisions_on_close_keys() {
        let keys: Vec<String> = (0..1000).map(|i| format!("{i:011}")).collect();
        let mut hashes: Vec<u64> = keys
            .iter()
            .map(|k| stl_hash_bytes(k.as_bytes(), DEFAULT_STL_SEED))
            .collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 1000);
    }
}
