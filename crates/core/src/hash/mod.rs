//! Runtime-executable hash functions.
//!
//! [`ByteHash`] is the common interface of every hash function in this
//! repository — synthesized and baseline alike. [`SynthesizedHash`] executes
//! a [`crate::synth::Plan`] directly: the same loads, masks and shifts the
//! emitted C++/Rust source performs, so measurements on the plan transfer to
//! the generated code. [`adapter`] bridges to `std::hash` so synthesized
//! functions drop into `HashMap`/`HashSet` the way SEPE's C++ functors drop
//! into `std::unordered_map` (Figure 5d).

pub mod adapter;
mod batch;
pub mod keyed;
mod stl;
mod synthesized;

pub use batch::HashBatch;
pub use keyed::{siphash13, EntropySeedSource, FixedSeedSource, SeedSource};
pub use stl::{stl_hash_bytes, DEFAULT_STL_SEED};
pub use synthesized::{SynthError, SynthesizedHash};

/// A hash function over byte strings.
///
/// This is the shape of every function the paper evaluates: keys go in as
/// bytes, a 64-bit hash code comes out. Implementations are expected to be
/// deterministic and cheap to call.
///
/// # Examples
///
/// ```
/// use sepe_core::hash::{stl_hash_bytes, ByteHash, DEFAULT_STL_SEED};
///
/// struct Stl;
/// impl ByteHash for Stl {
///     fn hash_bytes(&self, key: &[u8]) -> u64 {
///         stl_hash_bytes(key, DEFAULT_STL_SEED)
///     }
/// }
/// assert_eq!(Stl.hash_bytes(b"abc"), Stl.hash_bytes(b"abc"));
/// ```
pub trait ByteHash {
    /// Hashes `key` to a 64-bit code.
    fn hash_bytes(&self, key: &[u8]) -> u64;
}

impl<T: ByteHash + ?Sized> ByteHash for &T {
    fn hash_bytes(&self, key: &[u8]) -> u64 {
        (**self).hash_bytes(key)
    }
}

impl<T: ByteHash + ?Sized> ByteHash for Box<T> {
    fn hash_bytes(&self, key: &[u8]) -> u64 {
        (**self).hash_bytes(key)
    }
}

impl<T: ByteHash + ?Sized> ByteHash for std::sync::Arc<T> {
    fn hash_bytes(&self, key: &[u8]) -> u64 {
        (**self).hash_bytes(key)
    }
}
