//! Execution of synthesized hash plans.

use crate::aes::{aesenc, fold_block, Block};
use crate::bits::{load_block_le, load_u64_le, pext_u64, Isa};
use crate::hash::stl::{stl_hash_bytes, MUL};
use crate::hash::ByteHash;
use crate::infer::infer_pattern;
use crate::pattern::KeyPattern;
use crate::regex::{parse, ExpandError, ParseRegexError};
use crate::synth::{synthesize, Family, Plan, WordOp};
use std::fmt;

/// Why a [`SynthesizedHash`] could not be constructed.
///
/// Each variant names one rejected input shape, so callers (the CLI, the
/// verification harness) can report a precise diagnostic instead of a
/// catch-all boxed error.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SynthError {
    /// [`SynthesizedHash::from_examples`] was given no keys. The join of
    /// zero keys is undefined in the quad-semilattice (Section 3.1), so
    /// there is no pattern to synthesize from.
    EmptyExampleSet,
    /// The format describes only the empty key (zero maximum length), which
    /// admits no loads and no hash plan.
    EmptyFormat,
    /// The regular expression could not be parsed (syntax error, or a
    /// construct outside the supported fixed-shape subset such as `|`, `*`
    /// or `+`).
    Parse(ParseRegexError),
    /// The parsed expression could not be expanded into byte positions: an
    /// oversized `{n}` repetition past the expansion limit, or an optional
    /// part before a mandatory one.
    Expand(ExpandError),
    /// A serialized plan was not syntactically valid JSON, or not the JSON
    /// shape of a plan/bundle. Carries the parser's position and message.
    MalformedPlan {
        /// Byte offset of the failure in the input.
        at: usize,
        /// What the parser expected or found.
        message: String,
    },
    /// A serialized bundle declared a schema version this build does not
    /// speak.
    PlanVersion {
        /// Version stored in the bundle.
        found: u64,
        /// Version this build reads and writes.
        supported: u64,
    },
    /// A serialized bundle's payload does not match its stored checksum —
    /// the plan was truncated, bit-flipped, or hand-edited in transit.
    PlanChecksum {
        /// Checksum stored in the bundle.
        stored: u64,
        /// Checksum recomputed over the payload actually received.
        computed: u64,
    },
    /// A plan contains a load that reads past the key length its pattern
    /// admits, which the unchecked batch kernels must never see.
    PlanLoadOutOfBounds {
        /// Byte offset of the offending load.
        offset: u32,
        /// Width of the load in bytes (8 for words, 16 for blocks).
        width: u32,
        /// Key length the plan's region admits.
        key_len: usize,
    },
    /// A plan's extraction masks disagree with its pattern: a pext mask
    /// selects bits the pattern marks constant, or a non-pext op carries a
    /// mask other than the full word.
    PlanMaskConstBits,
    /// A bundle's plan shape disagrees with its declared family or pattern
    /// (for example a block plan under a word family, or word offsets that
    /// could never have been synthesized for the pattern's length).
    PlanPatternMismatch {
        /// What disagreed, in one phrase.
        detail: String,
    },
    /// Synthesis was cancelled before it finished: its cooperative
    /// [`crate::supervisor::CancelToken`] was revoked or its deadline
    /// expired. The partial work is discarded; retrying is the caller's
    /// (typically the resynthesis supervisor's) decision.
    Cancelled,
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::EmptyExampleSet => {
                write!(f, "cannot infer a key pattern from zero example keys")
            }
            SynthError::EmptyFormat => {
                write!(f, "key format is empty (matches only the zero-length key)")
            }
            SynthError::Parse(e) => write!(f, "regex parse error: {e}"),
            SynthError::Expand(e) => write!(f, "regex expansion error: {e}"),
            SynthError::MalformedPlan { at, message } => {
                write!(f, "malformed plan at byte {at}: {message}")
            }
            SynthError::PlanVersion { found, supported } => {
                write!(
                    f,
                    "plan schema version {found} is not supported (this build reads version {supported})"
                )
            }
            SynthError::PlanChecksum { stored, computed } => {
                write!(
                    f,
                    "plan checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
                )
            }
            SynthError::PlanLoadOutOfBounds {
                offset,
                width,
                key_len,
            } => {
                write!(
                    f,
                    "plan load at offset {offset} ({width} bytes) reads past the {key_len}-byte key its pattern admits"
                )
            }
            SynthError::PlanMaskConstBits => {
                write!(
                    f,
                    "plan extraction masks are inconsistent with the pattern's constant bits"
                )
            }
            SynthError::PlanPatternMismatch { detail } => {
                write!(f, "plan does not fit its declared family/pattern: {detail}")
            }
            SynthError::Cancelled => {
                write!(f, "synthesis was cancelled (deadline expired or revoked)")
            }
        }
    }
}

impl std::error::Error for SynthError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SynthError::Parse(e) => Some(e),
            SynthError::Expand(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseRegexError> for SynthError {
    fn from(e: ParseRegexError) -> Self {
        SynthError::Parse(e)
    }
}

impl From<ExpandError> for SynthError {
    fn from(e: ExpandError) -> Self {
        SynthError::Expand(e)
    }
}

impl From<crate::supervisor::SynthCancelled> for SynthError {
    fn from(_: crate::supervisor::SynthCancelled) -> Self {
        SynthError::Cancelled
    }
}

/// A specialized hash function synthesized for one key format.
///
/// The plan is executed directly — the same loads, masks and shifts the
/// generated C++/Rust source would perform — so the function is usable
/// immediately, without a compiler in the loop.
///
/// Keys that do not belong to the format hash safely (out-of-range loads
/// read as zero) but with degraded dispersion; like SEPE, callers are
/// expected to use a synthesized function only on keys of its format.
///
/// # Examples
///
/// ```
/// use sepe_core::hash::{ByteHash, SynthesizedHash};
/// use sepe_core::synth::Family;
///
/// let hash = SynthesizedHash::from_regex(r"\d{3}-\d{2}-\d{4}", Family::Pext)?;
/// assert_ne!(hash.hash_bytes(b"123-45-6789"), hash.hash_bytes(b"123-45-6780"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct SynthesizedHash {
    family: Family,
    plan: Plan,
    isa: Isa,
    seed: u64,
    /// Hardware BMI2 resolved once at construction, so the hot path pays
    /// no feature-detection check per extraction.
    hw_pext: bool,
    /// Inline copy of short fixed-word plans. The emitted C++ is straight-
    /// line code; keeping the operations inside the struct (no heap chase)
    /// lets the interpreted plan approximate it.
    fast: FastOps,
}

/// Up to this many word operations are inlined into the hash value itself.
const FAST_OPS: usize = 8;

#[derive(Debug, Clone, Copy)]
enum FastOps {
    /// Plan shape without a fast path (variable length, blocks, fallback,
    /// or more than [`FAST_OPS`] loads).
    None,
    /// Fixed-length xor of `n` rotated loads (Naive / OffXor). `shift` is
    /// the rotation of a clamped final load; zero elsewhere.
    Xor { n: u8, ops: [WordOp; FAST_OPS] },
    /// Fixed-length masked extraction of `n` loads (Pext).
    Pext { n: u8, ops: [WordOp; FAST_OPS] },
}

fn fast_ops_of(plan: &Plan, family: Family) -> FastOps {
    let Plan::FixedWords { ops, .. } = plan else {
        return FastOps::None;
    };
    if ops.is_empty() || ops.len() > FAST_OPS {
        return FastOps::None;
    }
    let n = ops.len() as u8;
    match family {
        Family::Naive | Family::OffXor | Family::Pext => {
            let mut buf = [WordOp {
                offset: 0,
                mask: 0,
                shift: 0,
            }; FAST_OPS];
            buf[..ops.len()].copy_from_slice(ops);
            if family == Family::Pext {
                FastOps::Pext { n, ops: buf }
            } else {
                FastOps::Xor { n, ops: buf }
            }
        }
        Family::Aes => FastOps::None,
    }
}

impl SynthesizedHash {
    /// Wraps an already-synthesized plan.
    #[must_use]
    pub fn new(plan: Plan, family: Family, isa: Isa) -> Self {
        let hw_pext = isa == Isa::Native && crate::bits::hardware_pext_available();
        let fast = fast_ops_of(&plan, family);
        SynthesizedHash {
            family,
            plan,
            isa,
            seed: 0,
            hw_pext,
            fast,
        }
    }

    /// Synthesizes a hash for a key pattern.
    #[must_use]
    pub fn from_pattern(pattern: &KeyPattern, family: Family) -> Self {
        SynthesizedHash::new(synthesize(pattern, family), family, Isa::Native)
    }

    /// Synthesizes a hash from a regular expression (Figure 5b).
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::Parse`] for syntax errors, [`SynthError::Expand`]
    /// when the expression cannot be pinned to byte positions (oversized
    /// `{n}` repetition, optional prefix), and [`SynthError::EmptyFormat`]
    /// when it expands to a zero-length format.
    pub fn from_regex(source: &str, family: Family) -> Result<Self, SynthError> {
        let pattern = parse(source)?.expand()?.to_key_pattern();
        if pattern.is_empty() {
            return Err(SynthError::EmptyFormat);
        }
        Ok(SynthesizedHash::from_pattern(&pattern, family))
    }

    /// Synthesizes a hash from example keys (Figure 5a).
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::EmptyExampleSet`] when `keys` is empty and
    /// [`SynthError::EmptyFormat`] when every example is the empty key.
    pub fn from_examples<'a, I>(keys: I, family: Family) -> Result<Self, SynthError>
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let pattern = infer_pattern(keys).map_err(|_| SynthError::EmptyExampleSet)?;
        if pattern.is_empty() {
            return Err(SynthError::EmptyFormat);
        }
        Ok(SynthesizedHash::from_pattern(&pattern, family))
    }

    /// Restricts the instruction set the plan may use; [`Isa::Portable`]
    /// reproduces the paper's aarch64 configuration (RQ4).
    #[must_use]
    pub fn with_isa(mut self, isa: Isa) -> Self {
        self.isa = isa;
        self.hw_pext = isa == Isa::Native && crate::bits::hardware_pext_available();
        self
    }

    /// Sets the seed mixed into the hash (default 0, as in Figure 5's
    /// generated code).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The family this function belongs to.
    #[must_use]
    pub fn family(&self) -> Family {
        self.family
    }

    /// The underlying plan.
    #[must_use]
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The instruction-set restriction in effect.
    #[must_use]
    pub fn isa(&self) -> Isa {
        self.isa
    }

    /// The seed mixed into the hash.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Emits the source code of this function in `language` — the artifact
    /// the paper's tool ships (Figure 5c). The emitted code computes
    /// exactly the hashes of [`ByteHash::hash_bytes`] (verified by the
    /// compile-and-run equivalence tests).
    ///
    /// # Examples
    ///
    /// ```
    /// use sepe_core::codegen::Language;
    /// use sepe_core::hash::SynthesizedHash;
    /// use sepe_core::synth::Family;
    ///
    /// let h = SynthesizedHash::from_regex(r"\d{3}-\d{2}-\d{4}", Family::Pext)?;
    /// let cpp = h.emit(Language::Cpp, "SsnHash");
    /// assert!(cpp.contains("struct SsnHash"));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    #[must_use]
    pub fn emit(&self, language: crate::codegen::Language, name: &str) -> String {
        crate::codegen::emit(&self.plan, self.family, language, name)
    }

    /// Combines the word loads of a plan, without the seed — shared by the
    /// fixed and variable paths so the seed is mixed exactly once.
    #[inline]
    fn combine_words(&self, key: &[u8], ops: &[WordOp]) -> u64 {
        let mut h = 0u64;
        if self.family == Family::Pext {
            #[cfg(target_arch = "x86_64")]
            if self.hw_pext {
                // SAFETY: hw_pext is only true when BMI2 was detected.
                return unsafe { eval_pext_hw(key, ops) };
            }
            for op in ops {
                let w = load_u64_le(key, op.offset as usize);
                h ^= pext_u64(w, op.mask, Isa::Portable) << op.shift;
            }
        } else {
            for op in ops {
                let w = load_u64_le(key, op.offset as usize);
                h ^= w.rotate_left(u32::from(op.shift));
            }
        }
        h
    }

    #[inline]
    fn eval_words_fixed(&self, key: &[u8], ops: &[WordOp]) -> u64 {
        self.seed ^ self.combine_words(key, ops)
    }

    #[inline]
    fn eval_words_var(&self, key: &[u8], ops: &[WordOp], tail_start: usize) -> u64 {
        // Variable-length keys mix the length in, as Figure 8's
        // initialize_hash(len, seed) does.
        let mut h = self.seed ^ (key.len() as u64).wrapping_mul(MUL);
        h ^= self.combine_words(key, ops);
        let mut o = tail_start;
        while o + 8 <= key.len() {
            h ^= load_u64_le(key, o).rotate_left((o % 64) as u32);
            o += 8;
        }
        if o < key.len() {
            h ^= load_u64_le(key, o).rotate_left((o % 64) as u32);
        }
        h
    }

    /// Combines one block: `state = aesenc(state ^ block, RK)`.
    ///
    /// Xoring the block *before* the round puts it through SubBytes, so the
    /// combination is non-linear (and, for a fixed state, bijective) in the
    /// block — one `aesenc` per block, exactly the cost the paper describes.
    #[inline]
    fn mix_block(&self, state: Block, block: Block) -> Block {
        let mut x = state;
        for (s, b) in x.iter_mut().zip(block.iter()) {
            *s ^= b;
        }
        aesenc(x, AES_ROUND_KEY, self.isa)
    }

    #[inline]
    fn eval_blocks(&self, key: &[u8], offsets: &[u32], tail_start: Option<usize>) -> u64 {
        let mut state: Block = seed_block(self.seed);
        if offsets.is_empty() && tail_start.is_none() {
            // Short fixed-length key: replicate it into one block.
            state = self.mix_block(state, replicate_block(key));
        } else {
            for &off in offsets {
                state = self.mix_block(state, load_block_le(key, off as usize));
            }
        }
        if let Some(tail) = tail_start {
            let mut o = tail;
            while o < key.len() {
                state = self.mix_block(state, load_block_le(key, o));
                o += 16;
            }
            // Mix the length so zero-padded tails of different lengths
            // differ.
            let mut len_block = [0u8; 16];
            len_block[..8].copy_from_slice(&(key.len() as u64).to_le_bytes());
            state = self.mix_block(state, len_block);
        }
        fold_block(state)
    }
}

impl SynthesizedHash {
    /// Evaluates exactly `W` keys with the interleaved (ops-outer,
    /// lanes-inner) schedule. Falls back to the scalar path for plan shapes
    /// whose per-key control flow diverges (variable-length tails, STL
    /// fallback).
    fn hash_lanes<const W: usize>(&self, keys: &[&[u8]], out: &mut [u64]) {
        use crate::hash::batch::xor_lanes;
        match &self.fast {
            FastOps::Xor { n, ops } => {
                return xor_lanes::<W>(self.seed, &ops[..*n as usize], keys, out);
            }
            FastOps::Pext { n, ops } => {
                return self.pext_lanes::<W>(&ops[..*n as usize], keys, out);
            }
            FastOps::None => {}
        }
        match &self.plan {
            Plan::FixedWords { ops, .. } => {
                if self.family == Family::Pext {
                    self.pext_lanes::<W>(ops, keys, out);
                } else {
                    xor_lanes::<W>(self.seed, ops, keys, out);
                }
            }
            Plan::FixedBlocks { offsets, .. } => self.blocks_lanes::<W>(offsets, keys, out),
            Plan::StlFallback | Plan::VarWords { .. } | Plan::VarBlocks { .. } => {
                // Per-key tail lengths differ, so there is no common op
                // schedule to interleave; stay scalar, stay correct.
                for (key, slot) in keys.iter().zip(out.iter_mut()) {
                    *slot = self.hash_bytes(key);
                }
            }
        }
    }

    #[inline]
    fn pext_lanes<const W: usize>(&self, ops: &[WordOp], keys: &[&[u8]], out: &mut [u64]) {
        #[cfg(target_arch = "x86_64")]
        if self.hw_pext {
            // SAFETY: hw_pext is only true when BMI2 was detected.
            return unsafe { crate::hash::batch::pext_hw_lanes::<W>(self.seed, ops, keys, out) };
        }
        crate::hash::batch::pext_soft_lanes::<W>(self.seed, ops, keys, out)
    }

    /// Interleaved AES combine: `W` independent 16-byte states advance
    /// through the block schedule together, so the `aesenc` latency of one
    /// lane overlaps the loads and rounds of the others.
    fn blocks_lanes<const W: usize>(&self, offsets: &[u32], keys: &[&[u8]], out: &mut [u64]) {
        debug_assert!(keys.len() == W && out.len() == W);
        let mut states = [seed_block(self.seed); W];
        if offsets.is_empty() {
            for lane in 0..W {
                states[lane] = self.mix_block(states[lane], replicate_block(keys[lane]));
            }
        } else {
            for &off in offsets {
                for lane in 0..W {
                    states[lane] =
                        self.mix_block(states[lane], load_block_le(keys[lane], off as usize));
                }
            }
        }
        for lane in 0..W {
            out[lane] = fold_block(states[lane]);
        }
    }
}

impl crate::hash::HashBatch for SynthesizedHash {
    fn hash_batch(&self, keys: &[&[u8]], out: &mut [u64]) {
        assert_eq!(keys.len(), out.len(), "batch output length mismatch");
        let mut i = 0usize;
        while keys.len() - i >= 8 {
            self.hash_lanes::<8>(&keys[i..i + 8], &mut out[i..i + 8]);
            i += 8;
        }
        if keys.len() - i >= 4 {
            self.hash_lanes::<4>(&keys[i..i + 4], &mut out[i..i + 4]);
            i += 4;
        }
        for j in i..keys.len() {
            out[j] = self.hash_bytes(keys[j]);
        }
    }
}

impl ByteHash for SynthesizedHash {
    #[inline]
    fn hash_bytes(&self, key: &[u8]) -> u64 {
        // Fast paths first: short fixed-word plans run without touching
        // the heap-allocated plan at all.
        match &self.fast {
            FastOps::Xor { n, ops } => {
                let mut h = self.seed;
                for op in &ops[..*n as usize] {
                    h ^= load_u64_le(key, op.offset as usize).rotate_left(u32::from(op.shift));
                }
                return h;
            }
            FastOps::Pext { n, ops } => {
                let ops = &ops[..*n as usize];
                #[cfg(target_arch = "x86_64")]
                if self.hw_pext {
                    // SAFETY: hw_pext is only true when BMI2 was detected.
                    return self.seed ^ unsafe { eval_pext_hw(key, ops) };
                }
                let mut h = self.seed;
                for op in ops {
                    let w = load_u64_le(key, op.offset as usize);
                    h ^= pext_u64(w, op.mask, Isa::Portable) << op.shift;
                }
                return h;
            }
            FastOps::None => {}
        }
        match &self.plan {
            Plan::StlFallback => stl_hash_bytes(key, self.seed),
            Plan::FixedWords { ops, .. } => self.eval_words_fixed(key, ops),
            Plan::VarWords {
                ops, tail_start, ..
            } => self.eval_words_var(key, ops, *tail_start),
            Plan::FixedBlocks { offsets, .. } => self.eval_blocks(key, offsets, None),
            Plan::VarBlocks {
                offsets,
                tail_start,
                ..
            } => self.eval_blocks(key, offsets, Some(*tail_start)),
        }
    }
}

/// The fixed round key of the Aes family (hex digits of e).
const AES_ROUND_KEY: Block = [
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
];

/// Hot path for hardware extraction: one `pext` per load, fully inlined
/// under the `bmi2` target feature.
///
/// # Safety
///
/// The caller must have verified BMI2 support.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "bmi2")]
unsafe fn eval_pext_hw(key: &[u8], ops: &[WordOp]) -> u64 {
    use std::arch::x86_64::_pext_u64;
    let mut h = 0u64;
    for op in ops {
        let w = load_u64_le(key, op.offset as usize);
        h ^= _pext_u64(w, op.mask) << op.shift;
    }
    h
}

fn seed_block(seed: u64) -> Block {
    // First 32 hex digits of pi, perturbed by the seed.
    let lo = 0x2438_6A88_85A3_08D3u64 ^ seed;
    let hi = 0x1319_8A2E_0370_7344u64 ^ seed.rotate_left(32);
    let mut b = [0u8; 16];
    b[..8].copy_from_slice(&lo.to_le_bytes());
    b[8..].copy_from_slice(&hi.to_le_bytes());
    b
}

fn replicate_block(key: &[u8]) -> Block {
    let mut b = [0u8; 16];
    if key.is_empty() {
        return b;
    }
    for (i, slot) in b.iter_mut().enumerate() {
        *slot = key[i % key.len()];
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ssn_keys() -> Vec<String> {
        (0..2000u64)
            .map(|i| format!("{:03}-{:02}-{:04}", i % 1000, (i / 7) % 100, i % 10000))
            .collect()
    }

    fn distinct<I: IntoIterator<Item = u64>>(hashes: I) -> usize {
        let mut v: Vec<u64> = hashes.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        v.len()
    }

    #[test]
    fn all_families_hash_ssns_deterministically() {
        for family in Family::ALL {
            let h = SynthesizedHash::from_regex(r"\d{3}-\d{2}-\d{4}", family).unwrap();
            assert_eq!(h.hash_bytes(b"123-45-6789"), h.hash_bytes(b"123-45-6789"));
        }
    }

    #[test]
    fn pext_is_a_bijection_on_ssns() {
        // 36 variable bits <= 64: Pext must be collision-free (Section 4.2).
        let h = SynthesizedHash::from_regex(r"\d{3}-\d{2}-\d{4}", Family::Pext).unwrap();
        let keys: Vec<String> = ssn_keys()
            .into_iter()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let n = keys.len();
        assert_eq!(distinct(keys.iter().map(|k| h.hash_bytes(k.as_bytes()))), n);
    }

    #[test]
    fn portable_and_native_pext_agree() {
        let native = SynthesizedHash::from_regex(r"\d{3}-\d{2}-\d{4}", Family::Pext).unwrap();
        let portable = native.clone().with_isa(Isa::Portable);
        for k in ssn_keys().iter().take(500) {
            assert_eq!(
                native.hash_bytes(k.as_bytes()),
                portable.hash_bytes(k.as_bytes())
            );
        }
    }

    #[test]
    fn portable_and_native_aes_agree() {
        let native =
            SynthesizedHash::from_regex(r"(([0-9]{3})\.){3}[0-9]{3}", Family::Aes).unwrap();
        let portable = native.clone().with_isa(Isa::Portable);
        for i in 0..200u32 {
            let k = format!(
                "{:03}.{:03}.{:03}.{:03}",
                i % 256,
                (i * 7) % 256,
                i % 100,
                i
            );
            assert_eq!(
                native.hash_bytes(k.as_bytes()),
                portable.hash_bytes(k.as_bytes())
            );
        }
    }

    #[test]
    fn short_formats_use_the_stl_fallback() {
        let h = SynthesizedHash::from_regex(r"\d{4}", Family::Pext).unwrap();
        assert!(h.plan().is_fallback());
        assert_eq!(h.hash_bytes(b"1234"), stl_hash_bytes(b"1234", 0));
    }

    #[test]
    fn offxor_matches_the_figure_5_shape() {
        // Figure 5c: OffXor for 15-byte IPv4 loads at 0 and 7; the clamped
        // load at 7 additionally carries the anti-cancellation rotation.
        let h = SynthesizedHash::from_regex(r"(([0-9]{3})\.){3}[0-9]{3}", Family::OffXor).unwrap();
        let key = b"192.168.001.017";
        let expected = load_u64_le(key, 0)
            ^ load_u64_le(key, 7).rotate_left(u32::from(crate::synth::OVERLAP_ROTATION));
        assert_eq!(h.hash_bytes(key), expected);
    }

    #[test]
    fn clamped_load_rotation_blocks_xor_cancellation() {
        // Without the rotation, the SSN plan's loads at 0 and 3 xor byte
        // pairs three apart into the same lane: "123-45-6789" and
        // "133-55-7788" (the same +1/-1 nibble flips at string positions
        // 1,4,7,10) collided. This is the regression test for the seed's
        // spurious Naive/OffXor T-Coll under the normal distribution.
        for family in [Family::Naive, Family::OffXor] {
            let h = SynthesizedHash::from_regex(r"\d{3}-\d{2}-\d{4}", family).unwrap();
            assert_ne!(
                h.hash_bytes(b"123-45-6789"),
                h.hash_bytes(b"133-55-7788"),
                "{family}"
            );
        }
    }

    #[test]
    fn naive_and_offxor_are_injective_on_ssns() {
        // 9 digit bytes x 4 variable bits = 36 < 64: with the overlap
        // rotation the xor of loads is injective on the format, so a large
        // key sample must hash distinctly.
        for family in [Family::Naive, Family::OffXor] {
            let h = SynthesizedHash::from_regex(r"\d{3}-\d{2}-\d{4}", family).unwrap();
            let keys: std::collections::BTreeSet<String> = ssn_keys().into_iter().collect();
            let n = keys.len();
            assert_eq!(
                distinct(keys.iter().map(|k| h.hash_bytes(k.as_bytes()))),
                n,
                "{family}"
            );
        }
    }

    #[test]
    fn pext_ssn_matches_figure_12_semantics() {
        let h = SynthesizedHash::from_regex(r"\d{3}\.\d{2}\.\d{4}", Family::Pext).unwrap();
        let key = b"123.45.6789";
        let w0 = load_u64_le(key, 0);
        let w1 = load_u64_le(key, 3);
        let expected = pext_u64(w0, 0x0F00_0F0F_000F_0F0F, Isa::Portable)
            ^ (pext_u64(w1, 0x0F0F_0F00_0000_0000, Isa::Portable) << 52);
        assert_eq!(h.hash_bytes(key), expected);
    }

    #[test]
    fn seed_perturbs_all_families() {
        for family in Family::ALL {
            let a = SynthesizedHash::from_regex(r"[0-9]{16}", family).unwrap();
            let b = a.clone().with_seed(0xDEAD_BEEF);
            assert_ne!(
                a.hash_bytes(b"1234567890123456"),
                b.hash_bytes(b"1234567890123456")
            );
        }
    }

    #[test]
    fn aes_replicates_short_keys() {
        let h = SynthesizedHash::from_regex(r"\d{3}-\d{2}-\d{4}", Family::Aes).unwrap();
        // Distinct SSNs mostly hash apart even through replication.
        let keys = ssn_keys();
        let unique_keys: std::collections::BTreeSet<_> = keys.iter().collect();
        let d = distinct(unique_keys.iter().map(|k| h.hash_bytes(k.as_bytes())));
        // The replicated block goes through a full AES round, so the only
        // collision channel is the 128 -> 64 fold: essentially none expected.
        assert!(d >= unique_keys.len() - 1, "{d} of {}", unique_keys.len());
    }

    #[test]
    fn variable_length_keys_hash_by_length_and_content() {
        let h = SynthesizedHash::from_examples(
            [
                &b"user=00000000"[..],
                b"user=99999999&session=aaaaaaaaaaaaaaaa",
            ],
            Family::OffXor,
        )
        .unwrap();
        let a = h.hash_bytes(b"user=12345678");
        let b = h.hash_bytes(b"user=12345678&session=bbbbbbbbbbbbbbbb");
        let c = h.hash_bytes(b"user=12345678&session=cccccccccccccccc");
        assert_ne!(a, b);
        assert_ne!(b, c);
    }

    #[test]
    fn var_plan_distinguishes_padded_lengths() {
        // Keys that agree on all loaded words but differ in length.
        let h = SynthesizedHash::from_examples([&b"k:0000"[..], b"k:000000000000"], Family::Naive)
            .unwrap();
        assert_ne!(h.hash_bytes(b"k:00000000"), h.hash_bytes(b"k:0000000000"));
    }

    #[test]
    fn fully_constant_format_hashes_to_seed() {
        let h = SynthesizedHash::from_examples([&b"only-one-key-fmt"[..]], Family::OffXor).unwrap();
        assert_eq!(h.hash_bytes(b"only-one-key-fmt"), 0);
    }

    #[test]
    fn ints_100_digits_zero_collisions_sample() {
        // The paper reports zero T-Coll for INTS despite 400 relevant bits.
        let h = SynthesizedHash::from_regex(r"[0-9]{100}", Family::Pext).unwrap();
        let keys: Vec<String> = (0..2000u64).map(|i| format!("{:0100}", i * 977)).collect();
        assert_eq!(
            distinct(keys.iter().map(|k| h.hash_bytes(k.as_bytes()))),
            keys.len()
        );
    }
}
