//! Length-stratified synthesis — an extension beyond the paper.
//!
//! SEPE's lattice treats a missing byte as `⊤`, so joining keys of mixed
//! lengths (Example 3.4's IATA ∨ ICAO airport codes) erases most constant
//! structure and forces the slower skip-table plan. A production tool can
//! do better when the key set is a *union of a few fixed-length formats*:
//! stratify the examples by length, infer one pattern per length, and
//! dispatch on `key.len()` — each branch then gets the fully unrolled
//! fixed-length specialization of Section 3.2.2.
//!
//! This mirrors what hand-tuned hashes like Polymur (Figure 2 of the
//! paper) do with their per-length branches, but synthesized.

use crate::hash::{ByteHash, SynthesizedHash};
use crate::infer::{infer_pattern, EmptyExampleSetError};
use crate::synth::Family;
use std::collections::BTreeMap;

/// A hash function that dispatches on key length to per-length
/// specializations, falling back to the general variable-length plan for
/// unseen lengths.
///
/// # Examples
///
/// ```
/// use sepe_core::hash::ByteHash;
/// use sepe_core::multi::LengthDispatchHash;
/// use sepe_core::synth::Family;
///
/// // IATA (3 letters) and ICAO (4 letters) airport codes mixed together.
/// let examples: [&[u8]; 4] = [b"JFKx-page", b"GRUx-page", b"EGLLx-page", b"SBGRx-page"];
/// let hash = LengthDispatchHash::from_examples(examples, Family::OffXor)?;
/// assert_eq!(hash.strata().count(), 2);
/// assert_ne!(hash.hash_bytes(b"LAXx-page"), hash.hash_bytes(b"KDENx-page"));
/// # Ok::<(), sepe_core::infer::EmptyExampleSetError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LengthDispatchHash {
    per_len: BTreeMap<usize, SynthesizedHash>,
    fallback: SynthesizedHash,
    family: Family,
}

impl LengthDispatchHash {
    /// Stratifies `keys` by length, synthesizes one fixed-length hash per
    /// stratum plus a joined fallback for unseen lengths.
    ///
    /// # Errors
    ///
    /// Returns [`EmptyExampleSetError`] when `keys` is empty.
    pub fn from_examples<'a, I>(keys: I, family: Family) -> Result<Self, EmptyExampleSetError>
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let keys: Vec<&[u8]> = keys.into_iter().collect();
        if keys.is_empty() {
            return Err(EmptyExampleSetError);
        }
        let mut strata: BTreeMap<usize, Vec<&[u8]>> = BTreeMap::new();
        for k in &keys {
            strata.entry(k.len()).or_default().push(k);
        }
        let per_len = strata
            .into_iter()
            .map(|(len, stratum)| {
                let pattern = infer_pattern(stratum.iter().copied()).expect("stratum is non-empty");
                debug_assert!(pattern.is_fixed_len());
                (len, SynthesizedHash::from_pattern(&pattern, family))
            })
            .collect();
        let joined = infer_pattern(keys.iter().copied()).expect("key set is non-empty");
        Ok(LengthDispatchHash {
            per_len,
            fallback: SynthesizedHash::from_pattern(&joined, family),
            family,
        })
    }

    /// The synthesized family of every branch.
    #[must_use]
    pub fn family(&self) -> Family {
        self.family
    }

    /// Iterates over the (length, specialized hash) strata.
    pub fn strata(&self) -> impl Iterator<Item = (usize, &SynthesizedHash)> {
        self.per_len.iter().map(|(&len, h)| (len, h))
    }

    /// The fallback hash used for lengths outside every stratum.
    #[must_use]
    pub fn fallback(&self) -> &SynthesizedHash {
        &self.fallback
    }
}

impl ByteHash for LengthDispatchHash {
    #[inline]
    fn hash_bytes(&self, key: &[u8]) -> u64 {
        match self.per_len.get(&key.len()) {
            // Mix the length in: different strata may produce identical
            // word xors for their respective keys.
            Some(h) => h.hash_bytes(key) ^ (key.len() as u64).rotate_left(56),
            None => self.fallback.hash_bytes(key),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const AIRPORT_KEYS: [&[u8]; 6] = [
        b"code=JFK",
        b"code=GRU",
        b"code=LAX", // 8 bytes
        b"code=EGLL",
        b"code=SBGR",
        b"code=KDEN", // 9 bytes
    ];

    #[test]
    fn stratifies_by_length() {
        let h = LengthDispatchHash::from_examples(AIRPORT_KEYS, Family::OffXor).unwrap();
        let lens: Vec<usize> = h.strata().map(|(l, _)| l).collect();
        assert_eq!(lens, vec![8, 9]);
        // Each stratum got a fixed-length plan, not the skip-table one.
        for (_, hash) in h.strata() {
            assert!(
                matches!(hash.plan(), crate::synth::Plan::FixedWords { .. }),
                "{:?}",
                hash.plan()
            );
        }
    }

    #[test]
    fn per_length_plans_beat_the_joined_plan_in_specificity() {
        let h = LengthDispatchHash::from_examples(AIRPORT_KEYS, Family::OffXor).unwrap();
        // The joined fallback is variable-length.
        assert!(matches!(
            h.fallback().plan(),
            crate::synth::Plan::VarWords { .. }
        ));
    }

    #[test]
    fn dispatch_is_deterministic_and_length_aware() {
        let h = LengthDispatchHash::from_examples(AIRPORT_KEYS, Family::OffXor).unwrap();
        assert_eq!(h.hash_bytes(b"code=ABC"), h.hash_bytes(b"code=ABC"));
        // Same leading bytes, different stratum: must differ.
        assert_ne!(h.hash_bytes(b"code=ABC"), h.hash_bytes(b"code=ABCD"));
    }

    #[test]
    fn unseen_lengths_use_the_fallback() {
        let h = LengthDispatchHash::from_examples(AIRPORT_KEYS, Family::OffXor).unwrap();
        let fallback_value = h.fallback().hash_bytes(b"code=TOOLONGCODE");
        assert_eq!(h.hash_bytes(b"code=TOOLONGCODE"), fallback_value);
    }

    #[test]
    fn no_cross_stratum_trivial_collisions() {
        let h = LengthDispatchHash::from_examples(AIRPORT_KEYS, Family::Naive).unwrap();
        // Zero-padded Naive loads could make "X" and "X\0" collide without
        // the length mix-in.
        let mut hashes: Vec<u64> = Vec::new();
        for code in [&b"AAA"[..], b"AAB", b"ABA", b"BAA"] {
            let mut k8 = b"code=".to_vec();
            k8.extend_from_slice(code);
            hashes.push(h.hash_bytes(&k8));
            let mut k9 = k8.clone();
            k9.push(b'Z');
            hashes.push(h.hash_bytes(&k9));
        }
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 8);
    }

    #[test]
    fn empty_example_set_errors() {
        assert!(LengthDispatchHash::from_examples(std::iter::empty(), Family::Pext).is_err());
    }

    #[test]
    fn single_length_degenerates_to_one_stratum() {
        let h =
            LengthDispatchHash::from_examples([&b"00-00"[..], b"55-55", b"99-99"], Family::Pext)
                .unwrap();
        assert_eq!(h.strata().count(), 1);
    }
}
