//! Source-code emission for synthesized hash functions.
//!
//! SEPE's deliverable is C++ source: functor structs that plug into
//! `std::unordered_map` (Figure 5c). This module emits that C++, and a Rust
//! rendition of the same plan. The emitted code performs exactly the loads,
//! masks and shifts of the [`crate::synth::Plan`], so the runtime-executed
//! plan of [`crate::hash::SynthesizedHash`] is a faithful stand-in for the
//! compiled artifact — a property the integration tests check by evaluating
//! both against a reference interpreter.

mod cpp;
mod cpp_arm;
mod rust;

pub use cpp::{emit_cpp, emit_dispatch_cpp};
pub use cpp_arm::emit_cpp_arm;
pub use rust::emit_rust;

use crate::synth::{Family, Plan};

/// The output language of code generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Language {
    /// C++17, using x86 intrinsics (`_pext_u64`, `_mm_aesenc_si128`) as the
    /// paper's generator does.
    Cpp,
    /// C++17 for aarch64: NEON `vaeseq_u8`/`vaesmcq_u8` for the Aes family
    /// and the portable bit extraction (the paper's second target —
    /// "either x86 or ARM-specific instructions").
    CppAarch64,
    /// Rust, using the same instruction selection via `std::arch`.
    Rust,
}

/// Emits a complete, self-contained hash-function definition named
/// `name` for `plan` in the requested language.
///
/// # Examples
///
/// ```
/// use sepe_core::codegen::{emit, Language};
/// use sepe_core::regex::Regex;
/// use sepe_core::synth::{synthesize, Family};
///
/// let p = Regex::compile(r"(([0-9]{3})\.){3}[0-9]{3}")?;
/// let plan = synthesize(&p, Family::OffXor);
/// let code = emit(&plan, Family::OffXor, Language::Cpp, "Ipv4OffXorHash");
/// assert!(code.contains("struct Ipv4OffXorHash"));
/// assert!(code.contains("load_u64_le(ptr + 7)"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn emit(plan: &Plan, family: Family, language: Language, name: &str) -> String {
    match language {
        Language::Cpp => emit_cpp(plan, family, name),
        Language::CppAarch64 => emit_cpp_arm(plan, family, name),
        Language::Rust => emit_rust(plan, family, name),
    }
}

/// Renders the xor-combination expression shared by both emitters:
/// `h0 ^ (h1 << 52) ^ ...`.
fn combine_expr(terms: &[(String, u8)]) -> String {
    if terms.is_empty() {
        return "0".to_owned();
    }
    terms
        .iter()
        .map(|(name, shift)| {
            if *shift == 0 {
                name.clone()
            } else {
                format!("({name} << {shift})")
            }
        })
        .collect::<Vec<_>>()
        .join(" ^ ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;
    use crate::synth::synthesize;

    fn plan_for(re: &str, family: Family) -> Plan {
        synthesize(&Regex::compile(re).expect("regex compiles"), family)
    }

    #[test]
    fn combine_expr_formats() {
        assert_eq!(combine_expr(&[]), "0");
        assert_eq!(combine_expr(&[("h0".into(), 0)]), "h0");
        assert_eq!(
            combine_expr(&[("h0".into(), 0), ("h1".into(), 52)]),
            "h0 ^ (h1 << 52)"
        );
    }

    #[test]
    fn both_languages_emit_for_all_families_and_shapes() {
        let shapes = [
            r"\d{3}-\d{2}-\d{4}",    // fixed, with const bytes
            r"[0-9]{100}",           // fixed, no const bytes
            r"[0-9]{16}([a-z]{8})?", // variable length
            r"\d{4}",                // fallback
        ];
        for re in shapes {
            for family in Family::ALL {
                let plan = plan_for(re, family);
                for lang in [Language::Cpp, Language::CppAarch64, Language::Rust] {
                    let code = emit(&plan, family, lang, "TestHash");
                    assert!(!code.is_empty());
                    assert!(code.contains("TestHash"), "{re} {family} {lang:?}");
                }
            }
        }
    }
}
