//! C++ emission: functor structs compatible with `std::unordered_map`,
//! in the style of Figure 5c of the paper.

use super::combine_expr;
use crate::synth::{Family, Plan, WordOp};
use std::fmt::Write as _;

/// Emits a C++17 functor struct named `name` implementing `plan`.
#[must_use]
pub fn emit_cpp(plan: &Plan, family: Family, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// Synthesized by sepe-rs: {family} hash.");
    emit_preamble_for(&mut out, plan, family);
    emit_functor(&mut out, plan, family, name);
    out
}

/// Emits one functor with per-length dispatch: a `switch` on `key.size()`
/// routes each stratum to its fully unrolled fixed-length plan, with a
/// fallback plan for unseen lengths — the length-stratified extension of
/// [`crate::multi`], in C++ form.
///
/// # Panics
///
/// Panics if `strata` is empty.
#[must_use]
pub fn emit_dispatch_cpp(
    strata: &[(usize, &Plan)],
    fallback: &Plan,
    family: Family,
    name: &str,
) -> String {
    assert!(!strata.is_empty(), "need at least one stratum");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// Synthesized by sepe-rs: length-dispatched {family} hash ({} strata).",
        strata.len()
    );
    emit_preamble_for(&mut out, fallback, family);
    for (len, plan) in strata {
        emit_functor(&mut out, plan, family, &format!("{name}Len{len}"));
        out.push('\n');
    }
    emit_functor(&mut out, fallback, family, &format!("{name}Fallback"));
    let _ = writeln!(
        out,
        "\nstruct {name} {{\n    \
         std::size_t operator()(const std::string& key) const {{\n        \
         switch (key.size()) {{"
    );
    for (len, _) in strata {
        // The length is mixed in so equal-prefix keys of different strata
        // cannot trivially collide.
        let _ = writeln!(
            out,
            "        case {len}: return {name}Len{len}{{}}(key) ^ (static_cast<std::uint64_t>({len}) << 56 | static_cast<std::uint64_t>({len}) >> 8);"
        );
    }
    let _ = writeln!(
        out,
        "        default: return {name}Fallback{{}}(key);\n        }}\n    }}\n}};"
    );
    out
}

/// Emits whatever preamble (`#include`s and helpers) the plan family needs.
fn emit_preamble_for(out: &mut String, plan: &Plan, family: Family) {
    match plan {
        Plan::StlFallback => preamble(out, false, false),
        Plan::FixedBlocks { .. } | Plan::VarBlocks { .. } => emit_aes_preamble(out),
        Plan::FixedWords { .. } | Plan::VarWords { .. } => {
            preamble(out, family == Family::Pext, false);
        }
    }
}

/// Emits a functor struct without any preamble.
fn emit_functor(out: &mut String, plan: &Plan, family: Family, name: &str) {
    match plan {
        Plan::StlFallback => emit_fallback(out, name),
        Plan::FixedWords { len, ops } => emit_fixed_words(out, name, family, *len, ops),
        Plan::VarWords {
            min_len,
            ops,
            tail_start,
        } => emit_var_words(out, name, family, *min_len, ops, *tail_start),
        Plan::FixedBlocks { len, offsets } => emit_fixed_blocks(out, name, *len, offsets),
        Plan::VarBlocks {
            min_len,
            offsets,
            tail_start,
        } => emit_var_blocks(out, name, *min_len, offsets, *tail_start),
    }
}

fn preamble(out: &mut String, pext: bool, aes: bool) {
    out.push_str("#include <cstddef>\n#include <cstdint>\n#include <cstring>\n#include <string>\n");
    if pext || aes {
        out.push_str("#include <immintrin.h>\n");
    }
    out.push_str(
        "\nstatic inline std::uint64_t load_u64_le(const char* p) {\n    \
         std::uint64_t v;\n    std::memcpy(&v, p, sizeof(v));\n    return v;\n}\n\n",
    );
}

fn emit_fallback(out: &mut String, name: &str) {
    let _ = writeln!(
        out,
        "// Key format is shorter than 8 bytes: SEPE defaults to the STL hash.\n\
         struct {name} {{\n    \
         std::size_t operator()(const std::string& key) const {{\n        \
         return std::hash<std::string>{{}}(key);\n    }}\n}};"
    );
}

fn emit_word_loads(out: &mut String, family: Family, ops: &[WordOp]) -> Vec<(String, u8)> {
    let mut terms = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        let var = format!("h{i}");
        match family {
            Family::Pext => {
                let _ = writeln!(
                    out,
                    "        const std::uint64_t {var} = _pext_u64(load_u64_le(ptr + {}), {:#018x}ULL);",
                    op.offset, op.mask
                );
            }
            _ => {
                // A nonzero shift on a xor-family load is the clamped-load
                // rotation, applied here so the combine below stays a xor.
                if op.shift == 0 {
                    let _ = writeln!(
                        out,
                        "        const std::uint64_t {var} = load_u64_le(ptr + {});",
                        op.offset
                    );
                } else {
                    let _ = writeln!(
                        out,
                        "        const std::uint64_t {var}w = load_u64_le(ptr + {});\n        \
                         const std::uint64_t {var} = ({var}w << {}) | ({var}w >> {});",
                        op.offset,
                        op.shift,
                        64 - u32::from(op.shift)
                    );
                }
                terms.push((var, 0));
                continue;
            }
        }
        terms.push((var, op.shift));
    }
    terms
}

fn emit_fixed_words(out: &mut String, name: &str, family: Family, len: usize, ops: &[WordOp]) {
    let _ = writeln!(
        out,
        "// Fixed key length: {len} bytes; {} fully unrolled load(s).\n\
         struct {name} {{\n    \
         std::size_t operator()(const std::string& key) const {{\n        \
         const char* ptr = key.c_str();",
        ops.len()
    );
    let terms = emit_word_loads(out, family, ops);
    let _ = writeln!(out, "        return {};", combine_expr(&terms));
    out.push_str("    }\n};\n");
}

/// Above this many prefix loads, emit the explicit skip table and walk of
/// Figure 8 instead of unrolling ("an array with offsets to skip when
/// computing the hash").
const SKIP_TABLE_THRESHOLD: usize = 8;

fn emit_var_words(
    out: &mut String,
    name: &str,
    family: Family,
    min_len: usize,
    ops: &[WordOp],
    tail_start: usize,
) {
    let _ = writeln!(
        out,
        "// Variable key length (mandatory prefix: {min_len} bytes).\n\
         struct {name} {{\n    \
         std::size_t operator()(const std::string& key) const {{\n        \
         const char* ptr = key.c_str();\n        \
         std::uint64_t hash = key.size() * 0xc6a4a7935bd1e995ULL;"
    );
    // The uniform skip-table walk cannot express per-load rotations, so any
    // clamped (rotated) load keeps the prefix unrolled.
    if family != Family::Pext
        && ops.len() > SKIP_TABLE_THRESHOLD
        && ops.iter().all(|op| op.shift == 0)
    {
        // Figure 8's shape: skip[0] positions the first load; skip[c]
        // advances to the next load, jumping over any skipped constant
        // word in between.
        let mut skips = Vec::with_capacity(ops.len());
        let mut at = 0u32;
        for op in ops {
            skips.push(op.offset - at);
            at = op.offset;
        }
        let _ = writeln!(
            out,
            "        // Skip table (Figure 8): offsets jumping over constant words.\n        \
             static const std::size_t skip[{}] = {{{}}};\n        \
             const char* p = ptr + skip[0];\n        \
             for (std::size_t c = 1; c < {}; ++c) {{\n            \
             hash ^= load_u64_le(p);\n            \
             p += skip[c];\n        }}\n        \
             hash ^= load_u64_le(p);",
            skips.len(),
            skips
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", "),
            skips.len()
        );
    } else {
        let terms = emit_word_loads(out, family, ops);
        if !terms.is_empty() {
            let _ = writeln!(out, "        hash ^= {};", combine_expr(&terms));
        }
    }
    let _ = writeln!(
        out,
        "        std::size_t o = {tail_start};\n        \
         while (o + 8 <= key.size()) {{\n            \
         std::uint64_t w = load_u64_le(ptr + o);\n            \
         hash ^= (w << (o % 64)) | (w >> ((64 - o % 64) % 64));\n            \
         o += 8;\n        }}\n        \
         if (o < key.size()) {{\n            \
         std::uint64_t w = 0;\n            \
         std::memcpy(&w, ptr + o, key.size() - o);\n            \
         hash ^= (w << (o % 64)) | (w >> ((64 - o % 64) % 64));\n        }}\n        \
         return hash;\n    }}\n}};"
    );
}

fn emit_aes_preamble(out: &mut String) {
    preamble(out, false, true);
    out.push_str(
        "static inline __m128i load_block_le(const char* p, std::size_t avail) {\n    \
         alignas(16) char buf[16] = {0};\n    \
         std::memcpy(buf, p, avail < 16 ? avail : 16);\n    \
         return _mm_load_si128(reinterpret_cast<const __m128i*>(buf));\n}\n\n\
         // state = aesenc(state ^ block, RK): one AES round per block, with the\n\
         // block xored in before SubBytes so the combination is non-linear.\n\
         static inline __m128i aes_mix(__m128i state, __m128i block) {\n    \
         const __m128i rk = _mm_set_epi64x(0x3c4fcf098815f7abLL, 0xa6d2ae2816157e2bLL);\n    \
         return _mm_aesenc_si128(_mm_xor_si128(state, block), rk);\n}\n\n",
    );
}

fn seed_block_expr() -> &'static str {
    "_mm_set_epi64x(0x13198a2e03707344LL, 0x24386a8885a308d3LL)"
}

fn emit_fixed_blocks(out: &mut String, name: &str, len: usize, offsets: &[u32]) {
    let _ = writeln!(
        out,
        "// Fixed key length: {len} bytes; AES-round combination.\n\
         struct {name} {{\n    \
         std::size_t operator()(const std::string& key) const {{\n        \
         const char* ptr = key.c_str();\n        \
         __m128i state = {};",
        seed_block_expr()
    );
    if offsets.is_empty() {
        let _ = writeln!(
            out,
            "        // Key shorter than one block: replicate it to 16 bytes.\n        \
             alignas(16) char buf[16];\n        \
             for (int i = 0; i < 16; ++i) buf[i] = ptr[i % {len}];\n        \
             state = aes_mix(state, _mm_load_si128(reinterpret_cast<const __m128i*>(buf)));"
        );
    } else {
        for off in offsets {
            let _ = writeln!(
                out,
                "        state = aes_mix(state, load_block_le(ptr + {off}, {}));",
                len - *off as usize
            );
        }
    }
    out.push_str(
        "        return static_cast<std::size_t>(_mm_extract_epi64(state, 0) ^ _mm_extract_epi64(state, 1));\n    }\n};\n",
    );
}

fn emit_var_blocks(
    out: &mut String,
    name: &str,
    min_len: usize,
    offsets: &[u32],
    tail_start: usize,
) {
    let _ = writeln!(
        out,
        "// Variable key length (mandatory prefix: {min_len} bytes); AES-round combination.\n\
         struct {name} {{\n    \
         std::size_t operator()(const std::string& key) const {{\n        \
         const char* ptr = key.c_str();\n        \
         __m128i state = {};",
        seed_block_expr()
    );
    for off in offsets {
        let _ = writeln!(
            out,
            "        state = aes_mix(state, load_block_le(ptr + {off}, key.size() - {off}));"
        );
    }
    let _ = writeln!(
        out,
        "        for (std::size_t o = {tail_start}; o < key.size(); o += 16) {{\n            \
         state = aes_mix(state, load_block_le(ptr + o, key.size() - o));\n        }}\n        \
         state = aes_mix(state, _mm_set_epi64x(0, static_cast<long long>(key.size())));\n        \
         return static_cast<std::size_t>(_mm_extract_epi64(state, 0) ^ _mm_extract_epi64(state, 1));\n    }}\n}};"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;
    use crate::synth::synthesize;

    fn emit_for(re: &str, family: Family, name: &str) -> String {
        let plan = synthesize(&Regex::compile(re).expect("regex compiles"), family);
        emit_cpp(&plan, family, name)
    }

    #[test]
    fn offxor_ipv4_matches_figure_5() {
        let code = emit_for(
            r"(([0-9]{3})\.){3}[0-9]{3}",
            Family::OffXor,
            "SynthesizedOffXorHash",
        );
        assert!(code.contains("struct SynthesizedOffXorHash"));
        assert!(code.contains("load_u64_le(ptr + 0)"));
        assert!(code.contains("load_u64_le(ptr + 7)"));
        assert!(code.contains("return h0 ^ h1;"));
    }

    #[test]
    fn pext_ssn_contains_figure_12_masks() {
        let code = emit_for(r"\d{3}\.\d{2}\.\d{4}", Family::Pext, "SsnPextHash");
        assert!(code.contains("_pext_u64"));
        assert!(code.contains("0x0f000f0f000f0f0f"));
        assert!(code.contains("0x0f0f0f0000000000"));
        assert!(code.contains("(h1 << 52)"));
    }

    #[test]
    fn fallback_delegates_to_std_hash() {
        let code = emit_for(r"\d{4}", Family::Pext, "ShortKeyHash");
        assert!(code.contains("std::hash<std::string>"));
    }

    #[test]
    fn aes_emits_intrinsics() {
        let code = emit_for(r"[0-9]{40}", Family::Aes, "IntsAesHash");
        assert!(code.contains("_mm_aesenc_si128"));
        assert!(code.contains("immintrin.h"));
    }

    #[test]
    fn long_variable_prefixes_use_a_skip_table() {
        let code = emit_for(r"[0-9]{80}([a-z]{8})?", Family::OffXor, "LongVarHash");
        assert!(code.contains("static const std::size_t skip["), "{code}");
        assert!(code.contains("p += skip[c];"), "{code}");
        // Short prefixes stay unrolled.
        let code = emit_for(r"[0-9]{16}([a-z]{8})?", Family::OffXor, "ShortVarHash");
        assert!(!code.contains("skip["), "{code}");
    }

    #[test]
    fn dispatch_emits_switch_over_lengths() {
        use crate::infer::infer_pattern;
        let examples8: [&[u8]; 2] = [b"code=JFK", b"code=GRU"];
        let examples9: [&[u8]; 2] = [b"code=EGLL", b"code=SBGR"];
        let p8 = infer_pattern(examples8.iter().copied()).unwrap();
        let p9 = infer_pattern(examples9.iter().copied()).unwrap();
        let joined = infer_pattern(examples8.iter().chain(&examples9).copied()).unwrap();
        let plan8 = synthesize(&p8, Family::OffXor);
        let plan9 = synthesize(&p9, Family::OffXor);
        let fb = synthesize(&joined, Family::OffXor);
        let code = emit_dispatch_cpp(
            &[(8, &plan8), (9, &plan9)],
            &fb,
            Family::OffXor,
            "AirportHash",
        );
        assert!(code.contains("switch (key.size())"), "{code}");
        assert!(code.contains("case 8: return AirportHashLen8"), "{code}");
        assert!(code.contains("case 9: return AirportHashLen9"), "{code}");
        assert!(
            code.contains("default: return AirportHashFallback"),
            "{code}"
        );
        // Exactly one preamble.
        assert_eq!(
            code.matches("static inline std::uint64_t load_u64_le")
                .count(),
            1
        );
    }

    #[test]
    fn var_plan_emits_tail_loop() {
        let code = emit_for(r"[0-9]{16}([a-z]{8})?", Family::OffXor, "VarHash");
        assert!(code.contains("while (o + 8 <= key.size())"));
    }
}
