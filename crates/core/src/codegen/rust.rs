//! Rust emission: free functions mirroring the C++ functors, using the same
//! instruction selection through `std::arch`.

use super::combine_expr;
use crate::synth::{Family, Plan, WordOp};
use std::fmt::Write as _;

/// Emits a Rust function named `name` implementing `plan`.
#[must_use]
pub fn emit_rust(plan: &Plan, family: Family, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// Synthesized by sepe-rs: {family} hash.");
    match plan {
        Plan::StlFallback => emit_fallback(&mut out, name),
        Plan::FixedWords { len, ops } => emit_fixed_words(&mut out, name, family, *len, ops),
        Plan::VarWords {
            min_len,
            ops,
            tail_start,
        } => emit_var_words(&mut out, name, family, *min_len, ops, *tail_start),
        Plan::FixedBlocks { len, offsets } => emit_blocks(&mut out, name, Some(*len), offsets, 0),
        Plan::VarBlocks {
            min_len,
            offsets,
            tail_start,
        } => {
            let _ = writeln!(
                out,
                "// Variable key length (mandatory prefix: {min_len} bytes)."
            );
            emit_blocks(&mut out, name, None, offsets, *tail_start)
        }
    }
    out
}

fn helpers(out: &mut String, pext: bool) {
    out.push_str(
        "#[inline]\nfn load_u64_le(key: &[u8], offset: usize) -> u64 {\n    \
         let mut buf = [0u8; 8];\n    \
         let end = key.len().min(offset + 8);\n    \
         if offset < end {\n        buf[..end - offset].copy_from_slice(&key[offset..end]);\n    }\n    \
         u64::from_le_bytes(buf)\n}\n\n",
    );
    if pext {
        out.push_str(
            "#[inline]\n#[cfg(target_arch = \"x86_64\")]\nfn pext_u64(src: u64, mask: u64) -> u64 {\n    \
             // Requires a bmi2 target; compile with RUSTFLAGS=\"-C target-feature=+bmi2\".\n    \
             unsafe { core::arch::x86_64::_pext_u64(src, mask) }\n}\n\n",
        );
    }
}

fn emit_fallback(out: &mut String, name: &str) {
    let _ = writeln!(
        out,
        "// Key format is shorter than 8 bytes: SEPE defaults to the standard hash.\n\
         pub fn {name}(key: &[u8]) -> u64 {{\n    \
         use std::hash::{{BuildHasher, Hasher}};\n    \
         let mut h = std::collections::hash_map::RandomState::new().build_hasher();\n    \
         h.write(key);\n    h.finish()\n}}"
    );
}

fn emit_word_loads(out: &mut String, family: Family, ops: &[WordOp]) -> Vec<(String, u8)> {
    let mut terms = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        let var = format!("h{i}");
        match family {
            Family::Pext => {
                let _ = writeln!(
                    out,
                    "    let {var} = pext_u64(load_u64_le(key, {}), {:#018x});",
                    op.offset, op.mask
                );
            }
            _ => {
                // A nonzero shift on a xor-family load is the clamped-load
                // rotation, applied here so the combine below stays a xor.
                if op.shift == 0 {
                    let _ = writeln!(out, "    let {var} = load_u64_le(key, {});", op.offset);
                } else {
                    let _ = writeln!(
                        out,
                        "    let {var} = load_u64_le(key, {}).rotate_left({});",
                        op.offset, op.shift
                    );
                }
                terms.push((var, 0));
                continue;
            }
        }
        terms.push((var, op.shift));
    }
    terms
}

fn emit_fixed_words(out: &mut String, name: &str, family: Family, len: usize, ops: &[WordOp]) {
    helpers(out, family == Family::Pext);
    let _ = writeln!(
        out,
        "/// Fixed key length: {len} bytes; {} fully unrolled load(s).\n\
         pub fn {name}(key: &[u8]) -> u64 {{",
        ops.len()
    );
    let terms = emit_word_loads(out, family, ops);
    let _ = writeln!(out, "    {}\n}}", combine_expr(&terms));
}

fn emit_var_words(
    out: &mut String,
    name: &str,
    family: Family,
    min_len: usize,
    ops: &[WordOp],
    tail_start: usize,
) {
    helpers(out, family == Family::Pext);
    let _ = writeln!(
        out,
        "/// Variable key length (mandatory prefix: {min_len} bytes).\n\
         pub fn {name}(key: &[u8]) -> u64 {{\n    \
         let mut hash = (key.len() as u64).wrapping_mul(0xc6a4_a793_5bd1_e995);"
    );
    let terms = emit_word_loads(out, family, ops);
    if !terms.is_empty() {
        let _ = writeln!(out, "    hash ^= {};", combine_expr(&terms));
    }
    let _ = writeln!(
        out,
        "    let mut o = {tail_start};\n    \
         while o + 8 <= key.len() {{\n        \
         hash ^= load_u64_le(key, o).rotate_left((o % 64) as u32);\n        o += 8;\n    }}\n    \
         if o < key.len() {{\n        \
         hash ^= load_u64_le(key, o).rotate_left((o % 64) as u32);\n    }}\n    \
         hash\n}}"
    );
}

fn emit_blocks(
    out: &mut String,
    name: &str,
    len: Option<usize>,
    offsets: &[u32],
    tail_start: usize,
) {
    out.push_str(
        "const AES_ROUND_KEY: [u8; 16] = [\n    \
         0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,\n];\n\n\
         /// state = aesenc(state ^ block, RK): non-linear in the block.\n\
         #[inline]\n#[cfg(target_arch = \"x86_64\")]\nfn aes_mix(state: [u8; 16], block: [u8; 16]) -> [u8; 16] {\n    \
         // Requires an aes target; compile with RUSTFLAGS=\"-C target-feature=+aes\".\n    \
         unsafe {\n        use core::arch::x86_64::*;\n        \
         let s = _mm_loadu_si128(state.as_ptr().cast());\n        \
         let b = _mm_loadu_si128(block.as_ptr().cast());\n        \
         let k = _mm_loadu_si128(AES_ROUND_KEY.as_ptr().cast());\n        \
         let r = _mm_aesenc_si128(_mm_xor_si128(s, b), k);\n        \
         let mut out = [0u8; 16];\n        \
         _mm_storeu_si128(out.as_mut_ptr().cast(), r);\n        out\n    }\n}\n\n\
         #[inline]\nfn load_block_le(key: &[u8], offset: usize) -> [u8; 16] {\n    \
         let mut buf = [0u8; 16];\n    \
         let end = key.len().min(offset + 16);\n    \
         if offset < end {\n        buf[..end - offset].copy_from_slice(&key[offset..end]);\n    }\n    \
         buf\n}\n\n",
    );
    match len {
        Some(len) => {
            let _ = writeln!(
                out,
                "/// Fixed key length: {len} bytes; AES-round combination.\n\
                 pub fn {name}(key: &[u8]) -> u64 {{"
            );
        }
        None => {
            let _ = writeln!(out, "pub fn {name}(key: &[u8]) -> u64 {{");
        }
    }
    out.push_str(
        "    let mut state = [0u8; 16];\n    \
         state[..8].copy_from_slice(&0x2438_6A88_85A3_08D3u64.to_le_bytes());\n    \
         state[8..].copy_from_slice(&0x1319_8A2E_0370_7344u64.to_le_bytes());\n",
    );
    if let (true, Some(n)) = (offsets.is_empty(), len) {
        let _ = writeln!(
            out,
            "    // Key shorter than one block: replicate it to 16 bytes.\n    \
             let mut block = [0u8; 16];\n    \
             for i in 0..16 {{\n        block[i] = key[i % {n}];\n    }}\n    \
             state = aes_mix(state, block);"
        );
    } else {
        for off in offsets {
            let _ = writeln!(
                out,
                "    state = aes_mix(state, load_block_le(key, {off}));"
            );
        }
    }
    if len.is_none() {
        let _ = writeln!(
            out,
            "    let mut o = {tail_start};\n    \
             while o < key.len() {{\n        \
             state = aes_mix(state, load_block_le(key, o));\n        o += 16;\n    }}\n    \
             let mut len_block = [0u8; 16];\n    \
             len_block[..8].copy_from_slice(&(key.len() as u64).to_le_bytes());\n    \
             state = aes_mix(state, len_block);"
        );
    }
    out.push_str(
        "    let lo = u64::from_le_bytes(state[..8].try_into().unwrap());\n    \
         let hi = u64::from_le_bytes(state[8..].try_into().unwrap());\n    \
         lo ^ hi\n}\n",
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;
    use crate::synth::synthesize;

    fn emit_for(re: &str, family: Family, name: &str) -> String {
        let plan = synthesize(&Regex::compile(re).expect("regex compiles"), family);
        emit_rust(&plan, family, name)
    }

    #[test]
    fn offxor_ipv4_emits_two_loads() {
        let code = emit_for(r"(([0-9]{3})\.){3}[0-9]{3}", Family::OffXor, "ipv4_offxor");
        assert!(code.contains("pub fn ipv4_offxor"));
        assert!(code.contains("load_u64_le(key, 0)"));
        assert!(code.contains("load_u64_le(key, 7)"));
        assert!(code.contains("h0 ^ h1"));
    }

    #[test]
    fn pext_ssn_emits_masks_and_shift() {
        let code = emit_for(r"\d{3}\.\d{2}\.\d{4}", Family::Pext, "ssn_pext");
        assert!(code.contains("0x0f000f0f000f0f0f"));
        assert!(code.contains("(h1 << 52)"));
    }

    #[test]
    fn aes_emits_round_calls() {
        let code = emit_for(r"[0-9]{40}", Family::Aes, "ints_aes");
        assert!(code.contains("aes_mix(state, load_block_le(key, 0))"));
        assert!(code.contains("aes_mix(state, load_block_le(key, 24))"));
    }

    #[test]
    fn fallback_emits_standard_hash() {
        let code = emit_for(r"\d{4}", Family::Naive, "short_hash");
        assert!(code.contains("RandomState"));
    }
}
