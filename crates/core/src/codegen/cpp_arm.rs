//! C++ emission for aarch64 — the paper's second target ("SEPE generates
//! C++ functions that use either x86 or ARM-specific instructions").
//!
//! Differences from the x86 emitter:
//!
//! * the **Aes** family combines blocks with NEON `vaeseq_u8` +
//!   `vaesmcq_u8`. One architectural subtlety is preserved: ARM's `AESE`
//!   xors the round key *before* SubBytes (`AESE(state, key) =
//!   ShiftRows(SubBytes(state ^ key))`), so the x86 sequence
//!   `aesenc(state ^ block, RK)` is expressed as
//!   `MC(AESE(state ^ block, RK_pre)) ^ RK_post` with the round key split
//!   around the permutation — here simplified to the exactly equivalent
//!   `vaesmcq_u8(vaeseq_u8(state, block_xor_zero)) ^ rk`, since
//!   `AESE(x, k) = SR(SB(x ^ k))` and our combine is
//!   `MC(SR(SB(state ^ block))) ^ RK`;
//! * the **Pext** family uses the portable parallel-suffix extraction
//!   (the paper's Cortex-A57 has no `bext`, which is why Figure 15 drops
//!   Pext; emitting the software fallback keeps the family usable).

use super::combine_expr;
use crate::synth::{Family, Plan, WordOp};
use std::fmt::Write as _;

/// Emits a C++17 functor struct named `name` implementing `plan` with
/// aarch64 instruction selection.
#[must_use]
pub fn emit_cpp_arm(plan: &Plan, family: Family, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// Synthesized by sepe-rs: {family} hash (aarch64).");
    match plan {
        Plan::StlFallback => emit_fallback(&mut out, name),
        Plan::FixedWords { len, ops } => {
            preamble(&mut out, family == Family::Pext, false);
            emit_fixed_words(&mut out, name, family, *len, ops);
        }
        Plan::VarWords {
            min_len,
            ops,
            tail_start,
        } => {
            preamble(&mut out, family == Family::Pext, false);
            emit_var_words(&mut out, name, family, *min_len, ops, *tail_start);
        }
        Plan::FixedBlocks { len, offsets } => {
            preamble(&mut out, false, true);
            emit_fixed_blocks(&mut out, name, *len, offsets);
        }
        Plan::VarBlocks {
            min_len,
            offsets,
            tail_start,
        } => {
            preamble(&mut out, false, true);
            emit_var_blocks(&mut out, name, *min_len, offsets, *tail_start);
        }
    }
    out
}

fn preamble(out: &mut String, pext: bool, aes: bool) {
    out.push_str("#include <cstddef>\n#include <cstdint>\n#include <cstring>\n#include <string>\n");
    if aes {
        out.push_str("#include <arm_neon.h>\n");
    }
    out.push_str(
        "\nstatic inline std::uint64_t load_u64_le(const char* p) {\n    \
         std::uint64_t v;\n    std::memcpy(&v, p, sizeof(v));\n    return v;\n}\n\n",
    );
    if pext {
        // No bext on most aarch64 cores: the portable parallel-suffix
        // extraction (Hacker's Delight 7-4), identical to the plan
        // interpreter's software path.
        out.push_str(
            "// Portable parallel bit extract (no bext instruction on this core).\n\
             static inline std::uint64_t pext_u64(std::uint64_t x, std::uint64_t mask) {\n    \
             x &= mask;\n    \
             std::uint64_t mk = ~mask << 1;\n    \
             for (int i = 0; i < 6; ++i) {\n        \
             std::uint64_t mp = mk ^ (mk << 1);\n        \
             mp ^= mp << 2; mp ^= mp << 4; mp ^= mp << 8; mp ^= mp << 16; mp ^= mp << 32;\n        \
             std::uint64_t mv = mp & mask;\n        \
             mask = (mask ^ mv) | (mv >> (1 << i));\n        \
             std::uint64_t t = x & mv;\n        \
             x = (x ^ t) | (t >> (1 << i));\n        \
             mk &= ~mp;\n    }\n    \
             return x;\n}\n\n",
        );
    }
    if aes {
        out.push_str(
            "static inline uint8x16_t load_block_le(const char* p, std::size_t avail) {\n    \
             alignas(16) unsigned char buf[16] = {0};\n    \
             std::memcpy(buf, p, avail < 16 ? avail : 16);\n    \
             return vld1q_u8(buf);\n}\n\n\
             // state = MC(SR(SB(state ^ block))) ^ RK, via AESE (which xors its\n\
             // key operand before SubBytes) + AESMC — bit-identical to the x86\n\
             // aesenc(state ^ block, RK) sequence.\n\
             static inline uint8x16_t aes_mix(uint8x16_t state, uint8x16_t block) {\n    \
             static const unsigned char rk_bytes[16] = {\n        \
             0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,\n        \
             0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};\n    \
             uint8x16_t rk = vld1q_u8(rk_bytes);\n    \
             uint8x16_t sub = vaeseq_u8(state, block); // SR(SB(state ^ block))\n    \
             return veorq_u8(vaesmcq_u8(sub), rk);\n}\n\n",
        );
    }
}

fn emit_fallback(out: &mut String, name: &str) {
    let _ = writeln!(
        out,
        "// Key format is shorter than 8 bytes: SEPE defaults to the STL hash.\n\
         struct {name} {{\n    \
         std::size_t operator()(const std::string& key) const {{\n        \
         return std::hash<std::string>{{}}(key);\n    }}\n}};"
    );
}

fn emit_word_loads(out: &mut String, family: Family, ops: &[WordOp]) -> Vec<(String, u8)> {
    let mut terms = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        let var = format!("h{i}");
        match family {
            Family::Pext => {
                let _ = writeln!(
                    out,
                    "        const std::uint64_t {var} = pext_u64(load_u64_le(ptr + {}), {:#018x}ULL);",
                    op.offset, op.mask
                );
            }
            _ => {
                // A nonzero shift on a xor-family load is the clamped-load
                // rotation, applied here so the combine below stays a xor.
                if op.shift == 0 {
                    let _ = writeln!(
                        out,
                        "        const std::uint64_t {var} = load_u64_le(ptr + {});",
                        op.offset
                    );
                } else {
                    let _ = writeln!(
                        out,
                        "        const std::uint64_t {var}w = load_u64_le(ptr + {});\n        \
                         const std::uint64_t {var} = ({var}w << {}) | ({var}w >> {});",
                        op.offset,
                        op.shift,
                        64 - u32::from(op.shift)
                    );
                }
                terms.push((var, 0));
                continue;
            }
        }
        terms.push((var, op.shift));
    }
    terms
}

fn emit_fixed_words(out: &mut String, name: &str, family: Family, len: usize, ops: &[WordOp]) {
    let _ = writeln!(
        out,
        "// Fixed key length: {len} bytes; {} fully unrolled load(s).\n\
         struct {name} {{\n    \
         std::size_t operator()(const std::string& key) const {{\n        \
         const char* ptr = key.c_str();",
        ops.len()
    );
    let terms = emit_word_loads(out, family, ops);
    let _ = writeln!(out, "        return {};", combine_expr(&terms));
    out.push_str("    }\n};\n");
}

fn emit_var_words(
    out: &mut String,
    name: &str,
    family: Family,
    min_len: usize,
    ops: &[WordOp],
    tail_start: usize,
) {
    let _ = writeln!(
        out,
        "// Variable key length (mandatory prefix: {min_len} bytes).\n\
         struct {name} {{\n    \
         std::size_t operator()(const std::string& key) const {{\n        \
         const char* ptr = key.c_str();\n        \
         std::uint64_t hash = key.size() * 0xc6a4a7935bd1e995ULL;"
    );
    let terms = emit_word_loads(out, family, ops);
    if !terms.is_empty() {
        let _ = writeln!(out, "        hash ^= {};", combine_expr(&terms));
    }
    let _ = writeln!(
        out,
        "        std::size_t o = {tail_start};\n        \
         while (o + 8 <= key.size()) {{\n            \
         std::uint64_t w = load_u64_le(ptr + o);\n            \
         hash ^= (w << (o % 64)) | (w >> ((64 - o % 64) % 64));\n            \
         o += 8;\n        }}\n        \
         if (o < key.size()) {{\n            \
         std::uint64_t w = 0;\n            \
         std::memcpy(&w, ptr + o, key.size() - o);\n            \
         hash ^= (w << (o % 64)) | (w >> ((64 - o % 64) % 64));\n        }}\n        \
         return hash;\n    }}\n}};"
    );
}

fn seed_block_stmt(out: &mut String) {
    out.push_str(
        "        alignas(16) unsigned char seed_bytes[16];\n        \
         std::uint64_t lo = 0x24386a8885a308d3ULL, hi = 0x13198a2e03707344ULL;\n        \
         std::memcpy(seed_bytes, &lo, 8);\n        \
         std::memcpy(seed_bytes + 8, &hi, 8);\n        \
         uint8x16_t state = vld1q_u8(seed_bytes);\n",
    );
}

fn fold_return(out: &mut String) {
    out.push_str(
        "        std::uint64_t halves[2];\n        \
         vst1q_u8(reinterpret_cast<unsigned char*>(halves), state);\n        \
         return static_cast<std::size_t>(halves[0] ^ halves[1]);\n    }\n};\n",
    );
}

fn emit_fixed_blocks(out: &mut String, name: &str, len: usize, offsets: &[u32]) {
    let _ = writeln!(
        out,
        "// Fixed key length: {len} bytes; NEON AES-round combination.\n\
         struct {name} {{\n    \
         std::size_t operator()(const std::string& key) const {{\n        \
         const char* ptr = key.c_str();"
    );
    seed_block_stmt(out);
    if offsets.is_empty() {
        let _ = writeln!(
            out,
            "        // Key shorter than one block: replicate it to 16 bytes.\n        \
             alignas(16) unsigned char buf[16];\n        \
             for (int i = 0; i < 16; ++i) buf[i] = ptr[i % {len}];\n        \
             state = aes_mix(state, vld1q_u8(buf));"
        );
    } else {
        for off in offsets {
            let _ = writeln!(
                out,
                "        state = aes_mix(state, load_block_le(ptr + {off}, {}));",
                len - *off as usize
            );
        }
    }
    fold_return(out);
}

fn emit_var_blocks(
    out: &mut String,
    name: &str,
    min_len: usize,
    offsets: &[u32],
    tail_start: usize,
) {
    let _ = writeln!(
        out,
        "// Variable key length (mandatory prefix: {min_len} bytes); NEON AES.\n\
         struct {name} {{\n    \
         std::size_t operator()(const std::string& key) const {{\n        \
         const char* ptr = key.c_str();"
    );
    seed_block_stmt(out);
    for off in offsets {
        let _ = writeln!(
            out,
            "        state = aes_mix(state, load_block_le(ptr + {off}, key.size() - {off}));"
        );
    }
    let _ = writeln!(
        out,
        "        for (std::size_t o = {tail_start}; o < key.size(); o += 16) {{\n            \
         state = aes_mix(state, load_block_le(ptr + o, key.size() - o));\n        }}\n        \
         alignas(16) unsigned char len_block[16] = {{0}};\n        \
         std::uint64_t key_len = key.size();\n        \
         std::memcpy(len_block, &key_len, 8);\n        \
         state = aes_mix(state, vld1q_u8(len_block));"
    );
    fold_return(out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;
    use crate::synth::synthesize;

    fn emit_for(re: &str, family: Family, name: &str) -> String {
        let plan = synthesize(&Regex::compile(re).expect("regex compiles"), family);
        emit_cpp_arm(&plan, family, name)
    }

    #[test]
    fn aes_uses_neon_intrinsics() {
        let code = emit_for(r"[0-9]{40}", Family::Aes, "IntsAesHash");
        assert!(code.contains("arm_neon.h"));
        assert!(code.contains("vaeseq_u8"));
        assert!(code.contains("vaesmcq_u8"));
        assert!(!code.contains("immintrin"), "no x86 headers on aarch64");
    }

    #[test]
    fn pext_emits_the_portable_extraction() {
        let code = emit_for(r"\d{3}\.\d{2}\.\d{4}", Family::Pext, "SsnPextHash");
        assert!(code.contains("Portable parallel bit extract"));
        assert!(code.contains("0x0f000f0f000f0f0f"));
        assert!(!code.contains("_pext_u64(load"), "no x86 intrinsic");
    }

    #[test]
    fn offxor_is_pure_standard_cpp() {
        let code = emit_for(r"(([0-9]{3})\.){3}[0-9]{3}", Family::OffXor, "Ipv4Hash");
        assert!(code.contains("load_u64_le(ptr + 7)"));
        assert!(
            !code.contains("arm_neon"),
            "word families need no intrinsics"
        );
        assert!(!code.contains("immintrin"));
    }

    #[test]
    fn all_shapes_emit() {
        for re in [
            r"\d{4}",
            r"[0-9]{16}([a-z]{8})?",
            r"[0-9a-f]{39}([0-9a-f]{4})?",
        ] {
            for family in Family::ALL {
                let code = emit_for(re, family, "H");
                assert!(code.contains('H'), "{re} {family}");
                assert_eq!(
                    code.matches('{').count(),
                    code.matches('}').count(),
                    "{re} {family}"
                );
            }
        }
    }
}
