//! Parallel bit extraction and deposit (`pext`/`pdep`).
//!
//! Section 3.2.3 of the paper removes constant bits from loaded words with
//! the x86 `pext` instruction (or aarch64 `bext`). This module provides:
//!
//! * [`pext_reference`] / [`pdep_reference`] — the bit-by-bit loops of
//!   Figure 11, used as the executable specification in tests;
//! * [`pext_soft`] / [`pdep_soft`] — fast portable implementations
//!   (Hacker's Delight §7-4 parallel-suffix method);
//! * [`pext_u64`] / [`pdep_u64`] — runtime-dispatched entry points that use
//!   the BMI2 instructions when the host supports them;
//! * [`Isa`] — the architecture knob used by RQ4 (Figure 15) to force the
//!   portable paths, emulating a machine without bit-extract hardware.

/// Which instruction-set level plan evaluation may use.
///
/// [`Isa::Native`] picks the best available implementation at runtime;
/// [`Isa::Portable`] forces the pure-software paths. The evaluation of RQ4
/// uses `Portable` to reproduce the paper's aarch64 setting, where the
/// `bext` instruction was unavailable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Isa {
    /// Use hardware `pext`/AES instructions when the CPU supports them.
    #[default]
    Native,
    /// Use only portable software implementations.
    Portable,
}

/// The executable specification of `pext` from Figure 11 of the paper.
///
/// Walks the 64 bits of `mask`; every source bit under a set mask bit is
/// copied to the next low-order position of the destination.
///
/// # Examples
///
/// ```
/// use sepe_core::bits::pext_reference;
///
/// assert_eq!(pext_reference(0x1234_5678, 0x0000_FF00), 0x56);
/// ```
#[must_use]
pub fn pext_reference(src: u64, mask: u64) -> u64 {
    let mut dst = 0u64;
    let mut k = 0u32;
    for m in 0..64u32 {
        if (mask >> m) & 1 == 1 {
            dst |= ((src >> m) & 1) << k;
            k += 1;
        }
    }
    dst
}

/// The executable specification of `pdep` (inverse scatter of
/// [`pext_reference`]).
#[must_use]
pub fn pdep_reference(src: u64, mask: u64) -> u64 {
    let mut dst = 0u64;
    let mut k = 0u32;
    for m in 0..64u32 {
        if (mask >> m) & 1 == 1 {
            dst |= ((src >> k) & 1) << m;
            k += 1;
        }
    }
    dst
}

/// Fast portable `pext` (parallel-suffix method, Hacker's Delight §7-4).
///
/// Runs in a fixed 6-step sequence of shifts and masks — no per-bit loop —
/// so it stays usable inside hash functions on machines without BMI2.
#[must_use]
pub fn pext_soft(src: u64, mut mask: u64) -> u64 {
    let mut x = src & mask;
    // mk counts, for each bit position, how many mask zeros are below it
    // (mod 2^j at step j); mv is the set of bits to move at this step.
    let mut mk = !mask << 1;
    for i in 0..6 {
        let mut mp = mk ^ (mk << 1);
        mp ^= mp << 2;
        mp ^= mp << 4;
        mp ^= mp << 8;
        mp ^= mp << 16;
        mp ^= mp << 32;
        let mv = mp & mask;
        mask = (mask ^ mv) | (mv >> (1 << i));
        let t = x & mv;
        x = (x ^ t) | (t >> (1 << i));
        mk &= !mp;
    }
    x
}

/// Fast portable `pdep` (inverse of [`pext_soft`]).
///
/// Uses the precomputed-move-masks formulation: each of the six steps
/// scatters a group of bits left by a power of two.
#[must_use]
pub fn pdep_soft(src: u64, mask: u64) -> u64 {
    // Compute the same move masks pext_soft would use, then replay them in
    // reverse, moving bits left instead of right.
    let mut mv = [0u64; 6];
    let mut m = mask;
    let mut mk = !mask << 1;
    for (i, slot) in mv.iter_mut().enumerate() {
        let mut mp = mk ^ (mk << 1);
        mp ^= mp << 2;
        mp ^= mp << 4;
        mp ^= mp << 8;
        mp ^= mp << 16;
        mp ^= mp << 32;
        *slot = mp & m;
        m = (m ^ *slot) | (*slot >> (1 << i));
        mk &= !mp;
    }
    let mut x = src;
    for i in (0..6).rev() {
        let shift = 1usize << i;
        let t = x << shift;
        x = (x & !mv[i]) | (t & mv[i]);
    }
    x & mask
}

/// Process-wide override that forces the software `pext`/`pdep` paths even
/// when BMI2 hardware is present.
///
/// This only ever *disables* hardware dispatch — it cannot enable BMI2 on a
/// machine without it, so flipping it is always safe. Tests use it to
/// exercise the software fallback on BMI2 CI machines; both paths compute
/// the same function, so concurrent tests observing either setting stay
/// correct.
static FORCE_SOFTWARE_PEXT: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

/// Forces (or un-forces) the portable software `pext`/`pdep` paths
/// process-wide, regardless of hardware support.
///
/// Intended for tests and differential verification: on a BMI2 machine the
/// software fallback is otherwise dead code. Note that
/// [`crate::SynthesizedHash`] caches the dispatch decision at construction,
/// so the flag must be set *before* building hashes that should observe it.
pub fn force_software_pext(force: bool) {
    FORCE_SOFTWARE_PEXT.store(force, std::sync::atomic::Ordering::Relaxed);
}

/// Whether [`force_software_pext`] is currently in effect.
#[must_use]
pub fn software_pext_forced() -> bool {
    FORCE_SOFTWARE_PEXT.load(std::sync::atomic::Ordering::Relaxed)
}

#[cfg(target_arch = "x86_64")]
mod hw {
    /// Whether the host CPU exposes BMI2 (`pext`/`pdep`).
    pub fn bmi2_available() -> bool {
        use std::sync::OnceLock;
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| std::arch::is_x86_feature_detected!("bmi2"))
    }

    #[target_feature(enable = "bmi2")]
    pub unsafe fn pext_hw(src: u64, mask: u64) -> u64 {
        std::arch::x86_64::_pext_u64(src, mask)
    }

    #[target_feature(enable = "bmi2")]
    pub unsafe fn pdep_hw(src: u64, mask: u64) -> u64 {
        std::arch::x86_64::_pdep_u64(src, mask)
    }
}

/// Whether hardware parallel bit extraction is available on this host.
#[must_use]
pub fn hardware_pext_available() -> bool {
    if software_pext_forced() {
        return false;
    }
    #[cfg(target_arch = "x86_64")]
    {
        hw::bmi2_available()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Extracts the bits of `src` selected by `mask` into the low-order bits of
/// the result, using hardware BMI2 when `isa` allows it and the CPU has it.
#[inline]
#[must_use]
pub fn pext_u64(src: u64, mask: u64, isa: Isa) -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        if isa == Isa::Native && hw::bmi2_available() && !software_pext_forced() {
            // SAFETY: guarded by the runtime BMI2 check above.
            return unsafe { hw::pext_hw(src, mask) };
        }
    }
    let _ = isa;
    pext_soft(src, mask)
}

/// Deposits the low-order bits of `src` into the positions selected by
/// `mask` (inverse of [`pext_u64`] on masked values).
#[inline]
#[must_use]
pub fn pdep_u64(src: u64, mask: u64, isa: Isa) -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        if isa == Isa::Native && hw::bmi2_available() && !software_pext_forced() {
            // SAFETY: guarded by the runtime BMI2 check above.
            return unsafe { hw::pdep_hw(src, mask) };
        }
    }
    let _ = isa;
    pdep_soft(src, mask)
}

/// Loads up to eight little-endian bytes starting at `key[offset]`.
///
/// Bytes past the end of `key` read as zero, mirroring the `load_bytes`
/// helper of the STL murmur implementation (Figure 1, Line 13). The common
/// in-bounds case compiles to a single unaligned 8-byte load.
#[inline]
#[must_use]
pub fn load_u64_le(key: &[u8], offset: usize) -> u64 {
    match key.get(offset..offset + 8) {
        Some(w) => u64::from_le_bytes(w.try_into().expect("slice of length 8")),
        None => {
            let mut buf = [0u8; 8];
            if let Some(tail) = key.get(offset..) {
                buf[..tail.len()].copy_from_slice(tail);
            }
            u64::from_le_bytes(buf)
        }
    }
}

/// Loads up to sixteen little-endian bytes starting at `key[offset]`,
/// zero-padded, as a 16-byte block for the AES combine step.
#[inline]
#[must_use]
pub fn load_block_le(key: &[u8], offset: usize) -> [u8; 16] {
    let mut buf = [0u8; 16];
    if let Some(tail) = key.get(offset..) {
        let n = tail.len().min(16);
        buf[..n].copy_from_slice(&tail[..n]);
    }
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    const CASES: &[(u64, u64)] = &[
        (0, 0),
        (u64::MAX, u64::MAX),
        (0x1234_5678_9ABC_DEF0, 0x0F0F_0F0F_0F0F_0F0F),
        (0xDEAD_BEEF_CAFE_BABE, 0xFFFF_0000_FFFF_0000),
        (0x0123_4567_89AB_CDEF, 0x8000_0000_0000_0001),
        (u64::MAX, 0),
        (0, u64::MAX),
        (0xAAAA_AAAA_AAAA_AAAA, 0x5555_5555_5555_5555),
        (0x0F00_0F0F_000F_0F0F, 0x0F00_0F0F_000F_0F0F),
    ];

    #[test]
    fn soft_pext_matches_reference() {
        for &(src, mask) in CASES {
            assert_eq!(
                pext_soft(src, mask),
                pext_reference(src, mask),
                "src={src:#x} mask={mask:#x}"
            );
        }
    }

    #[test]
    fn soft_pdep_matches_reference() {
        for &(src, mask) in CASES {
            assert_eq!(
                pdep_soft(src, mask),
                pdep_reference(src, mask),
                "src={src:#x} mask={mask:#x}"
            );
        }
    }

    #[test]
    fn dispatched_matches_reference_both_isas() {
        for &(src, mask) in CASES {
            for isa in [Isa::Native, Isa::Portable] {
                assert_eq!(pext_u64(src, mask, isa), pext_reference(src, mask));
                assert_eq!(pdep_u64(src, mask, isa), pdep_reference(src, mask));
            }
        }
    }

    #[test]
    fn ssn_mask_from_figure_12_is_a_bijection_witness() {
        // mk0 of Figure 12 keeps the low nibbles of the digit bytes of
        // "ddd.dd.dd" (first eight bytes of an SSN).
        let mk0 = 0x0F00_0F0F_000F_0F0Fu64;
        let word = u64::from_le_bytes(*b"123.45.6");
        let extracted = pext_u64(word, mk0, Isa::Portable);
        // Digits 1,2,3,4,5,6 -> nibbles packed low-to-high.
        assert_eq!(extracted, 0x0065_4321);
    }

    #[test]
    fn pdep_then_pext_is_identity_on_compact_values() {
        let mask = 0x0F0F_0F0F_0F0F_0F0Fu64;
        for v in [0u64, 1, 0xFFFF_FFFF, 0x0123_4567_89AB_CDEF & 0xFFFF_FFFF] {
            assert_eq!(pext_soft(pdep_soft(v, mask), mask), v & 0xFFFF_FFFF);
        }
    }

    /// SplitMix64 step — the test RNG, kept local so `sepe-core` stays
    /// dependency-free.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Masks in the shapes that stress the parallel-suffix steps: uniform,
    /// sparse (AND of three draws), dense (OR of two), and the per-byte
    /// nibble/full patterns synthesis actually produces.
    fn random_mask(rng: &mut u64, round: usize) -> u64 {
        match round % 4 {
            0 => splitmix(rng),
            1 => splitmix(rng) & splitmix(rng) & splitmix(rng),
            2 => splitmix(rng) | splitmix(rng),
            _ => {
                let mut mask = 0u64;
                for byte in 0..8 {
                    let lane = match splitmix(rng) % 3 {
                        0 => 0x00u64,
                        1 => 0x0F,
                        _ => 0xFF,
                    };
                    mask |= lane << (8 * byte);
                }
                mask
            }
        }
    }

    #[test]
    fn soft_implementations_match_reference_on_random_sweeps() {
        let mut rng = 0x5E9E_D17Fu64;
        for round in 0..2000 {
            let src = splitmix(&mut rng);
            let mask = random_mask(&mut rng, round);
            assert_eq!(
                pext_soft(src, mask),
                pext_reference(src, mask),
                "pext src={src:#x} mask={mask:#x}"
            );
            assert_eq!(
                pdep_soft(src, mask),
                pdep_reference(src, mask),
                "pdep src={src:#x} mask={mask:#x}"
            );
        }
    }

    #[test]
    fn dispatched_matches_reference_on_random_sweeps_for_both_isas() {
        let mut rng = 0xB17_5EEDu64;
        for round in 0..500 {
            let src = splitmix(&mut rng);
            let mask = random_mask(&mut rng, round);
            for isa in [Isa::Native, Isa::Portable] {
                assert_eq!(
                    pext_u64(src, mask, isa),
                    pext_reference(src, mask),
                    "pext {isa:?} src={src:#x} mask={mask:#x}"
                );
                assert_eq!(
                    pdep_u64(src, mask, isa),
                    pdep_reference(src, mask),
                    "pdep {isa:?} src={src:#x} mask={mask:#x}"
                );
            }
        }
    }

    #[test]
    fn pdep_pext_roundtrips_on_random_masked_and_compact_values() {
        let mut rng = 0x1DEA_A5A5u64;
        for round in 0..500 {
            let src = splitmix(&mut rng);
            let mask = random_mask(&mut rng, round);
            let bits = mask.count_ones();
            let compact = if bits == 64 {
                src
            } else {
                src & ((1u64 << bits) - 1)
            };
            let masked = src & mask;
            for isa in [Isa::Native, Isa::Portable] {
                // pdep ∘ pext is the identity on mask-confined values…
                assert_eq!(
                    pdep_u64(pext_u64(masked, mask, isa), mask, isa),
                    masked,
                    "{isa:?} masked={masked:#x} mask={mask:#x}"
                );
                // …and pext ∘ pdep on popcount-compact ones (§3.2.3's
                // bijectivity argument in both directions).
                assert_eq!(
                    pext_u64(pdep_u64(compact, mask, isa), mask, isa),
                    compact,
                    "{isa:?} compact={compact:#x} mask={mask:#x}"
                );
            }
        }
    }

    #[test]
    fn hardware_and_software_pext_agree_on_10k_random_pairs() {
        // On a BMI2 host `pext_u64(.., Isa::Native)` takes the hardware
        // path (unless force_software_pext is set by a concurrently running
        // test — in which case both sides take the soft path and the
        // comparison is vacuous but still true). On other hosts both sides
        // are the soft path. Either way: 10k (src, mask) pairs must agree.
        let mut rng = 0xFEED_BEEFu64;
        for round in 0..10_000 {
            let src = splitmix(&mut rng);
            let mask = random_mask(&mut rng, round);
            assert_eq!(
                pext_u64(src, mask, Isa::Native),
                pext_soft(src, mask),
                "pext src={src:#x} mask={mask:#x}"
            );
            assert_eq!(
                pdep_u64(src, mask, Isa::Native),
                pdep_soft(src, mask),
                "pdep src={src:#x} mask={mask:#x}"
            );
        }
    }

    #[test]
    fn force_software_pext_disables_hardware_dispatch() {
        force_software_pext(true);
        assert!(software_pext_forced());
        assert!(!hardware_pext_available());
        // Dispatch still computes the right function through the override.
        assert_eq!(
            pext_u64(0x1234_5678, 0x0000_FF00, Isa::Native),
            pext_reference(0x1234_5678, 0x0000_FF00)
        );
        force_software_pext(false);
        assert!(!software_pext_forced());
    }

    #[test]
    fn load_u64_le_pads_with_zeros() {
        assert_eq!(
            load_u64_le(b"abc", 0),
            u64::from_le_bytes(*b"abc\0\0\0\0\0")
        );
        assert_eq!(load_u64_le(b"abc", 5), 0);
        assert_eq!(
            load_u64_le(b"abcdefgh", 0),
            u64::from_le_bytes(*b"abcdefgh")
        );
        assert_eq!(
            load_u64_le(b"abcdefghi", 1),
            u64::from_le_bytes(*b"bcdefghi")
        );
    }

    #[test]
    fn load_block_le_pads_with_zeros() {
        let b = load_block_le(b"0123456789", 2);
        assert_eq!(&b[..8], b"23456789");
        assert_eq!(&b[8..], &[0u8; 8]);
    }
}
