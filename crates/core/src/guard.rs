//! Format guards: cheap membership checks compiled from a [`KeyPattern`],
//! and a [`GuardedHash`] wrapper that degrades gracefully on format drift.
//!
//! A synthesized hash (Section 3.2 of the paper) is only well-dispersed on
//! keys of its trained format: a Pext plan discards the byte positions and
//! bits the lattice proved constant, so one off-format key silently
//! collapses onto a small hash subset or aliases with in-format keys.
//! [`FormatGuard`] validates the format constraints at hash time — a length
//! check plus the per-byte constant-bit test of [`BytePattern::matches`],
//! evaluated word-at-a-time over the same clamped load schedule the plans
//! use — and [`GuardedHash`] routes keys that fail the guard to a general
//! fallback hasher under a distinct domain tag, while counting drift so a
//! container can flip wholesale to the fallback once the mismatch rate
//! crosses a threshold.

use crate::bits::load_u64_le;
use crate::hash::keyed::{siphash13, SeedSource};
use crate::hash::{ByteHash, SynthError};
use crate::infer::infer_pattern;
use crate::pattern::KeyPattern;
use crate::synth::Family;
use crate::SynthesizedHash;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, TryLockError};

/// One precompiled 8-byte membership check: the conjunction of eight
/// [`BytePattern::matches`] tests, evaluated as
/// `(load_u64_le(key, offset) & mask) ^ bits == 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct GuardWord {
    offset: u32,
    mask: u64,
    bits: u64,
}

/// A compiled membership test for a key format.
///
/// `matches` returns exactly [`KeyPattern::matches`] — the guard is an
/// implementation of the same predicate, not an approximation — but the
/// mandatory prefix (`0..min_len`) is checked eight bytes at a time with
/// the clamped, possibly overlapping load schedule synthesized plans use,
/// so the common in-format case costs a handful of masked loads. Words
/// whose eight positions are all fully variable compile away entirely.
///
/// # Examples
///
/// ```
/// use sepe_core::guard::FormatGuard;
/// use sepe_core::regex::Regex;
///
/// let pattern = Regex::compile(r"\d{3}-\d{2}-\d{4}")?;
/// let guard = FormatGuard::compile(&pattern);
/// assert!(guard.matches(b"123-45-6789"));
/// assert!(!guard.matches(b"123-45-678"));   // wrong length
/// assert!(!guard.matches(b"123_45-6789"));  // '_' breaks the '-' literal
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatGuard {
    pattern: KeyPattern,
    words: Vec<GuardWord>,
    /// Whether the word schedule covers the whole mandatory prefix (always
    /// true when `min_len >= 8`; short formats fall back to bytes).
    words_cover_prefix: bool,
}

impl FormatGuard {
    /// Compiles a guard for `pattern`.
    #[must_use]
    pub fn compile(pattern: &KeyPattern) -> Self {
        let min_len = pattern.min_len();
        let mut words = Vec::new();
        let words_cover_prefix = min_len >= 8;
        if words_cover_prefix {
            // The plans' load schedule: words at 0, 8, 16, … with a final
            // clamped (overlapping) load so no position past min_len is read.
            let mut offset = 0usize;
            loop {
                let off = offset.min(min_len - 8);
                let (mask, bits) = word_test(pattern, off);
                if mask != 0 {
                    words.push(GuardWord {
                        offset: off as u32,
                        mask,
                        bits,
                    });
                }
                if off + 8 >= min_len {
                    break;
                }
                offset += 8;
            }
        }
        FormatGuard {
            pattern: pattern.clone(),
            words,
            words_cover_prefix,
        }
    }

    /// The pattern this guard was compiled from.
    #[must_use]
    pub fn pattern(&self) -> &KeyPattern {
        &self.pattern
    }

    /// Whether `key` belongs to the format. Agrees bit-for-bit with
    /// [`KeyPattern::matches`] on the source pattern.
    #[inline]
    #[must_use]
    pub fn matches(&self, key: &[u8]) -> bool {
        let min_len = self.pattern.min_len();
        if key.len() < min_len || key.len() > self.pattern.max_len() {
            return false;
        }
        let mut tail_start = 0usize;
        if self.words_cover_prefix {
            // Every load offset is <= min_len - 8 <= key.len() - 8, so the
            // loads stay in bounds. Accumulate branchlessly: in the expected
            // in-format case no early exit is worth a branch per word.
            let mut acc = 0u64;
            for w in &self.words {
                acc |= (load_u64_le(key, w.offset as usize) & w.mask) ^ w.bits;
            }
            if acc != 0 {
                return false;
            }
            tail_start = min_len;
        }
        key[tail_start..]
            .iter()
            .zip(&self.pattern.bytes()[tail_start..])
            .all(|(&b, p)| p.matches(b))
    }

    /// Batched membership: `verdicts[i] = self.matches(keys[i])`.
    ///
    /// The word tests run interleaved (ops outer, lanes inner) like the
    /// batch hash kernels, so the masked loads of independent keys overlap.
    /// Out-of-bounds lanes are safe to load unconditionally because
    /// [`load_u64_le`] zero-pads past the end of the key; their verdicts
    /// are forced false by the length check.
    ///
    /// # Panics
    ///
    /// Panics if `keys.len() != verdicts.len()`.
    pub fn check_batch(&self, keys: &[&[u8]], verdicts: &mut [bool]) {
        assert_eq!(keys.len(), verdicts.len(), "batch verdict length mismatch");
        let min_len = self.pattern.min_len();
        let max_len = self.pattern.max_len();
        for (key, v) in keys.iter().zip(verdicts.iter_mut()) {
            *v = key.len() >= min_len && key.len() <= max_len;
        }
        if self.words_cover_prefix {
            let mut chunk_start = 0usize;
            while chunk_start < keys.len() {
                let n = (keys.len() - chunk_start).min(8);
                let lanes = &keys[chunk_start..chunk_start + n];
                let mut acc = [0u64; 8];
                for w in &self.words {
                    let off = w.offset as usize;
                    for (lane, key) in lanes.iter().enumerate() {
                        acc[lane] |= (load_u64_le(key, off) & w.mask) ^ w.bits;
                    }
                }
                for lane in 0..n {
                    verdicts[chunk_start + lane] &= acc[lane] == 0;
                }
                chunk_start += n;
            }
        }
        // Byte tail (and the whole check for short formats), only for lanes
        // still passing.
        let tail_start = if self.words_cover_prefix { min_len } else { 0 };
        for (key, v) in keys.iter().zip(verdicts.iter_mut()) {
            if *v {
                *v = key[tail_start..]
                    .iter()
                    .zip(&self.pattern.bytes()[tail_start..])
                    .all(|(&b, p)| p.matches(b));
            }
        }
    }

    /// Number of word-level checks the fast path performs.
    #[must_use]
    pub fn word_checks(&self) -> usize {
        self.words.len()
    }
}

/// Builds the `(mask, bits)` pair testing the eight byte patterns at
/// `offset..offset + 8` against a little-endian load.
fn word_test(pattern: &KeyPattern, offset: usize) -> (u64, u64) {
    let mut mask = 0u64;
    let mut bits = 0u64;
    for i in 0..8 {
        let p = pattern.bytes()[offset + i];
        mask |= u64::from(p.const_mask()) << (8 * i);
        bits |= u64::from(p.const_bits()) << (8 * i);
    }
    (mask, bits)
}

/// Drift counters shared by every clone of a [`GuardedHash`].
///
/// The counters are lock-free atomics updated with relaxed `fetch_add`, so
/// any number of concurrent readers (the sharded containers hash under a
/// shared read lock) can record drift without losing increments; relaxed
/// ordering is enough because no other memory depends on a counter value.
///
/// **Overflow semantics are pinned as *saturating*:** a counter that
/// reaches `u64::MAX` stays there, [`GuardStats::total`] saturates instead
/// of wrapping, and [`GuardStats::window_counts`] subtracts saturating — a
/// long-lived process can never report a wrapped (tiny) lifetime count or
/// an underflowed window delta. Under concurrent increments right at the
/// saturation boundary a racing add may briefly be visible before the
/// clamp lands, but counters are monotone non-decreasing below `u64::MAX`
/// either way, which is the property the drift policies rely on.
///
/// Since the observability layer landed, the counters *are*
/// [`sepe_obs`] primitives — [`Counter`](sepe_obs::Counter) carries the
/// exact saturating semantics this type pinned when it went lock-free,
/// and a registry can export the live values without copying (see
/// [`GuardStats::export_metrics`]). The public accessors are unchanged.
#[derive(Debug, Default)]
pub struct GuardStats {
    in_format: sepe_obs::Counter,
    off_format: sepe_obs::Counter,
    /// Lifetime totals at the start of the current observation window —
    /// [`GuardStats::window_counts`] judges drift over the delta, so early
    /// clean traffic cannot dilute a later burst forever.
    win_in_base: sepe_obs::Gauge,
    win_off_base: sepe_obs::Gauge,
}

impl GuardStats {
    /// Keys that passed the guard.
    #[must_use]
    pub fn in_format(&self) -> u64 {
        self.in_format.get()
    }

    /// Keys that failed the guard and were routed to the fallback.
    #[must_use]
    pub fn off_format(&self) -> u64 {
        self.off_format.get()
    }

    /// Total keys observed (saturating, like the counters themselves).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.in_format().saturating_add(self.off_format())
    }

    /// Fraction of observed keys that were off-format (0 when none seen).
    #[must_use]
    pub fn off_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.off_format() as f64 / total as f64
        }
    }

    /// Off-format and total counts observed since the last
    /// [`GuardStats::roll_window`] (or reset). Saturating: a racing reset
    /// can only shrink the deltas, never underflow them.
    #[must_use]
    pub fn window_counts(&self) -> (u64, u64) {
        let in_delta = self.in_format().saturating_sub(self.win_in_base.get());
        let off_delta = self.off_format().saturating_sub(self.win_off_base.get());
        (off_delta, in_delta + off_delta)
    }

    /// Starts a new observation window at the current lifetime totals.
    pub fn roll_window(&self) {
        self.win_in_base.set(self.in_format());
        self.win_off_base.set(self.off_format());
    }

    /// Resets all counters, window bases included (used after a
    /// degradation or resynthesis).
    pub fn reset(&self) {
        self.in_format.reset();
        self.off_format.reset();
        self.win_in_base.set(0);
        self.win_off_base.set(0);
    }

    /// Exports the live drift counters into `registry` as the
    /// `guard_in_format` / `guard_off_format` families with `labels`.
    /// The snapshot reads this very instance — the hot path pays nothing.
    ///
    /// # Errors
    ///
    /// Propagates [`sepe_obs::RegistryError`] on duplicate ids or
    /// malformed label fragments.
    pub fn export_metrics(
        self: &std::sync::Arc<Self>,
        registry: &sepe_obs::Registry,
        labels: &[(&str, &str)],
    ) -> Result<(), sepe_obs::RegistryError> {
        let stats = self.clone();
        registry.export_counter("guard_in_format", labels, move || stats.in_format())?;
        let stats = self.clone();
        registry.export_counter("guard_off_format", labels, move || stats.off_format())?;
        Ok(())
    }
}

/// The routing state of a [`GuardedHash`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum GuardMode {
    /// In-format keys use the specialized hash; off-format keys use the
    /// tagged fallback.
    Guarded = 0,
    /// Every key uses the tagged fallback (the table has flipped).
    Degraded = 1,
    /// Every key uses the secret-keyed hash — the HashDoS rung. Unlike
    /// [`GuardMode::Degraded`], which still evaluates an *unkeyed*
    /// fallback an adversary with the binary can precompute collisions
    /// against, this mode is parameterized by a 128-bit seed held only in
    /// process memory (see [`GuardedHash::escalate_keyed`]).
    Keyed = 2,
}

/// Typed outcome of a resynthesis attempt, so callers (and the resynthesis
/// supervisor) can distinguish "nothing to do" from "search failed" —
/// a bare `bool` conflated the two.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resynth {
    /// A widened plan was synthesized, validated and installed; the guard
    /// is re-armed and the container must rebuild stored hashes.
    Applied,
    /// The reservoir holds no off-format keys: there is no drift to
    /// resynthesize for, and nothing was changed.
    NoDrift,
    /// Synthesis (or plan validation) failed; the hasher's mode, stats and
    /// reservoir are untouched.
    SynthFailed(SynthError),
}

impl Resynth {
    /// Whether a new plan was installed.
    #[must_use]
    pub fn is_applied(&self) -> bool {
        matches!(self, Resynth::Applied)
    }
}

/// Capacity of the off-format reservoir sample.
const RESERVOIR_CAP: usize = 64;

/// A bounded uniform sample of recently observed off-format keys, kept so a
/// degraded table can re-synthesize a widened pattern that covers the
/// drifted traffic.
///
/// `generation` counts resets: a background resynthesis job snapshots it
/// when it starts and a completed plan is only installed if the generation
/// still matches — a job whose reservoir was cleared under it (by a
/// competing resynthesis) is stale and discarded.
#[derive(Debug, Default)]
struct Reservoir {
    keys: Vec<Vec<u8>>,
    seen: u64,
    generation: u64,
}

impl Reservoir {
    fn clear(&mut self) {
        self.keys.clear();
        self.seen = 0;
        self.generation += 1;
    }

    fn offer(&mut self, key: &[u8]) {
        self.seen += 1;
        if self.keys.len() < RESERVOIR_CAP {
            self.keys.push(key.to_vec());
            return;
        }
        // Algorithm R with a splitmix-style hash of the arrival index as
        // the randomness source, so sampling is deterministic per sequence.
        let mut z = self.seen.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let slot = z % self.seen;
        if (slot as usize) < RESERVOIR_CAP {
            self.keys[slot as usize] = key.to_vec();
        }
    }
}

/// Domain-separation tag xored into fallback hashes so an off-format key can
/// never be engineered to collide with a chosen in-format key's specialized
/// hash (the two domains go through different finalizers).
const OFF_FORMAT_TAG: u64 = 0x0FF0_F0E5_EC7E_D000;

/// Domain-separation tag for the keyed escalation rung, distinct from
/// [`OFF_FORMAT_TAG`] so keyed hashes live in their own domain even if a
/// seed were ever (0, 0).
const KEYED_TAG: u64 = 0x5EED_5EED_5EED_5EED;

/// Murmur3-style finalizer applied to tagged fallback hashes.
#[inline]
fn fmix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    h ^= h >> 33;
    h
}

/// A hasher that validates each key against a [`FormatGuard`] and routes it
/// to either the specialized function `F` (in-format) or a safe general
/// fallback `G` (off-format), with drift accounting.
///
/// Clones share their statistics, mode and reservoir through [`Arc`]s: a
/// container can own one clone while the caller keeps another to observe
/// drift, and flipping the mode on any clone flips all of them.
///
/// # Examples
///
/// ```
/// use sepe_core::guard::GuardedHash;
/// use sepe_core::hash::{stl_hash_bytes, ByteHash, SynthesizedHash};
/// use sepe_core::regex::Regex;
/// use sepe_core::synth::Family;
///
/// struct Stl;
/// impl ByteHash for Stl {
///     fn hash_bytes(&self, key: &[u8]) -> u64 {
///         stl_hash_bytes(key, 0)
///     }
/// }
///
/// let pattern = Regex::compile(r"\d{3}-\d{2}-\d{4}")?;
/// let inner = SynthesizedHash::from_pattern(&pattern, Family::Pext);
/// let guarded = GuardedHash::new(&pattern, inner.clone(), Stl);
///
/// // In-format keys hash exactly as the unguarded specialized function.
/// assert_eq!(guarded.hash_bytes(b"123-45-6789"), inner.hash_bytes(b"123-45-6789"));
/// // Off-format keys are rerouted instead of mis-hashed.
/// let _ = guarded.hash_bytes(b"not an ssn");
/// assert_eq!(guarded.stats().off_format(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct GuardedHash<F, G> {
    guard: FormatGuard,
    specialized: F,
    fallback: G,
    stats: Arc<GuardStats>,
    mode: Arc<AtomicU8>,
    reservoir: Arc<Mutex<Reservoir>>,
    /// When set, routing ignores the shared mode — an epoch-frozen copy
    /// must keep reproducing the hashes of the epoch it was taken in even
    /// after the live hasher flips (see [`GuardedHash::epoch_frozen`]).
    forced_mode: Option<GuardMode>,
    /// When set, hashing skips the drift counters and the reservoir, so an
    /// incremental migration rehashing old entries leaves the observable
    /// drift accounting identical to a stop-the-world rebuild.
    silent: bool,
    /// The 128-bit key of the [`GuardMode::Keyed`] rung, shared by every
    /// clone. Stored as two atomics so `&self` rotation works through the
    /// shared containers; the pair is only ever written under the owning
    /// container's exclusive access (a shard write lock or `&mut self`),
    /// so readers cannot observe a torn (half-rotated) pair.
    seed: Arc<(AtomicU64, AtomicU64)>,
    /// When set, keyed hashing ignores the shared seed — an epoch-frozen
    /// copy taken in a keyed epoch must keep reproducing that epoch's
    /// hashes even after the live seed rotates.
    forced_seed: Option<(u64, u64)>,
}

impl<F, G> GuardedHash<F, G> {
    /// Wraps `specialized` (synthesized for `pattern`) with a format guard
    /// that reroutes non-matching keys to `fallback`.
    #[must_use]
    pub fn new(pattern: &KeyPattern, specialized: F, fallback: G) -> Self {
        GuardedHash {
            guard: FormatGuard::compile(pattern),
            specialized,
            fallback,
            stats: Arc::new(GuardStats::default()),
            mode: Arc::new(AtomicU8::new(GuardMode::Guarded as u8)),
            reservoir: Arc::new(Mutex::new(Reservoir::default())),
            forced_mode: None,
            silent: false,
            seed: Arc::new((AtomicU64::new(0), AtomicU64::new(0))),
            forced_seed: None,
        }
    }

    /// The compiled guard.
    #[must_use]
    pub fn guard(&self) -> &FormatGuard {
        &self.guard
    }

    /// The specialized (in-format) hasher.
    #[must_use]
    pub fn specialized(&self) -> &F {
        &self.specialized
    }

    /// The fallback (off-format) hasher.
    #[must_use]
    pub fn fallback(&self) -> &G {
        &self.fallback
    }

    /// The drift counters, shared with every clone.
    #[must_use]
    pub fn stats(&self) -> &GuardStats {
        &self.stats
    }

    /// An owning handle to the shared drift counters, suitable for
    /// exporting into a [`sepe_obs::Registry`] that outlives this view
    /// (see [`GuardStats::export_metrics`]).
    #[must_use]
    pub fn stats_handle(&self) -> Arc<GuardStats> {
        self.stats.clone()
    }

    /// The current routing mode (the pinned one for epoch-frozen copies).
    #[must_use]
    pub fn mode(&self) -> GuardMode {
        if let Some(m) = self.forced_mode {
            return m;
        }
        match self.mode.load(Ordering::Relaxed) {
            m if m == GuardMode::Degraded as u8 => GuardMode::Degraded,
            m if m == GuardMode::Keyed as u8 => GuardMode::Keyed,
            _ => GuardMode::Guarded,
        }
    }

    /// A copy of this hasher pinned to `mode`, with drift accounting and
    /// reservoir sampling disabled.
    ///
    /// The copy owns the current guard and specialized function (clones do
    /// not track later `resynthesize` calls), so it reproduces this epoch's
    /// hash of every key forever — exactly what an incremental migration
    /// needs to locate entries stored under a superseded plan, without
    /// double-counting them as live traffic.
    #[must_use]
    pub fn epoch_frozen(&self, mode: GuardMode) -> Self
    where
        F: Clone,
        G: Clone,
    {
        let mut frozen = self.clone();
        frozen.forced_mode = Some(mode);
        frozen.silent = true;
        // Pin the seed too: a frozen keyed epoch must survive later
        // rotations of the live key.
        frozen.forced_seed = Some(self.current_seed());
        frozen
    }

    /// A copy with *private* drift state: the same guard, specialized and
    /// fallback hashers, but fresh statistics, mode and reservoir shared
    /// with no one (ordinary clones share all three through [`Arc`]s).
    ///
    /// The sharded containers hand each shard a detached copy so one
    /// shard's drift accounting — and its degradation decision — cannot
    /// flip its siblings.
    #[must_use]
    pub fn detached(&self) -> Self
    where
        F: Clone,
        G: Clone,
    {
        GuardedHash {
            guard: self.guard.clone(),
            specialized: self.specialized.clone(),
            fallback: self.fallback.clone(),
            stats: Arc::new(GuardStats::default()),
            mode: Arc::new(AtomicU8::new(self.mode() as u8)),
            reservoir: Arc::new(Mutex::new(Reservoir::default())),
            forced_mode: self.forced_mode,
            silent: self.silent,
            seed: {
                let (k0, k1) = self.current_seed();
                Arc::new((AtomicU64::new(k0), AtomicU64::new(k1)))
            },
            forced_seed: self.forced_seed,
        }
    }

    /// Whether the hasher has flipped to fallback-for-everything.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.mode() == GuardMode::Degraded
    }

    /// Flips this hasher (and every clone) to the fallback for all keys.
    ///
    /// Callers holding a container keyed by this hasher must rebuild the
    /// stored hashes afterwards — see `UnorderedMap::maybe_degrade` in
    /// `sepe-containers`, which performs the flip and the rehash together.
    pub fn degrade(&self) {
        self.mode
            .store(GuardMode::Degraded as u8, Ordering::Relaxed);
    }

    /// Whether the hasher is on a secret-keyed rung.
    #[must_use]
    pub fn is_keyed(&self) -> bool {
        self.mode() == GuardMode::Keyed
    }

    /// The seed the keyed rung hashes under (the pinned one for
    /// epoch-frozen copies). Meaningful only in [`GuardMode::Keyed`]; other
    /// modes never consult it.
    #[must_use]
    pub fn current_seed(&self) -> (u64, u64) {
        if let Some(s) = self.forced_seed {
            return s;
        }
        // Two relaxed loads: rotation only happens under the owning
        // container's exclusive access, so the pair is never torn in
        // practice (see the `seed` field docs).
        (
            self.seed.0.load(Ordering::Relaxed),
            self.seed.1.load(Ordering::Relaxed),
        )
    }

    /// Escalates this hasher (and every clone) to the secret-keyed rung
    /// under a fresh seed from `seeds`.
    ///
    /// Like [`GuardedHash::degrade`], this only flips the routing —
    /// callers owning a container keyed by this hasher must rebuild stored
    /// hashes afterwards (`UnorderedMap::escalate_now` pairs the flip with
    /// an incremental migration). Call only with exclusive access to the
    /// owning container, so no reader observes a torn seed pair.
    pub fn escalate_keyed(&self, seeds: &impl SeedSource) {
        let (k0, k1) = seeds.next_seed();
        self.seed.0.store(k0, Ordering::Relaxed);
        self.seed.1.store(k1, Ordering::Relaxed);
        self.mode.store(GuardMode::Keyed as u8, Ordering::Relaxed);
    }

    /// Rotates the keyed rung's seed in place (mode stays
    /// [`GuardMode::Keyed`]) — the response to a suspected seed leak. The
    /// same exclusive-access and rebuild obligations as
    /// [`GuardedHash::escalate_keyed`] apply.
    pub fn rotate_seed(&self, seeds: &impl SeedSource) {
        let (k0, k1) = seeds.next_seed();
        self.seed.0.store(k0, Ordering::Relaxed);
        self.seed.1.store(k1, Ordering::Relaxed);
    }

    /// De-escalates back to [`GuardMode::Guarded`]: the specialized hash
    /// takes over again, the drift counters reset, and the reservoir is
    /// cleared.
    ///
    /// Clearing the reservoir is deliberate: during an attack it fills
    /// with the attacker's crafted keys, and resynthesizing a widened
    /// pattern over those would hand the adversary control of the next
    /// plan. The quiet window that justifies re-arming also invalidates
    /// the sample.
    pub fn rearm(&self) {
        self.lock_reservoir().clear();
        self.stats.reset();
        self.mode.store(GuardMode::Guarded as u8, Ordering::Relaxed);
    }

    /// The hash of the secret-keyed rung: SipHash-1-3 over the raw key
    /// bytes under the current seed, tag-separated and finalized like the
    /// other routing domains. Deliberately *not* layered over the fallback
    /// hash — collapsing first through an unkeyed function would let
    /// precomputed fallback collisions survive into the keyed domain.
    #[inline]
    fn keyed_hash(&self, key: &[u8]) -> u64 {
        let (k0, k1) = self.current_seed();
        fmix64(siphash13(k0, k1, key) ^ KEYED_TAG)
    }

    /// Locks the reservoir, recovering from poison: a panic elsewhere
    /// (e.g. in synthesis code sharing the mutex through a clone) must not
    /// silently disable drift sampling forever. The reservoir's state is a
    /// bag of sampled keys plus counters — every update leaves it
    /// structurally valid, so the poisoned contents are safe to keep using.
    fn lock_reservoir(&self) -> MutexGuard<'_, Reservoir> {
        self.reservoir
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Off-format keys sampled since the last reset, oldest-biased uniform.
    #[must_use]
    pub fn reservoir_keys(&self) -> Vec<Vec<u8>> {
        self.lock_reservoir().keys.clone()
    }

    /// The reservoir's reset generation — the staleness ticket background
    /// resynthesis jobs carry (see [`Resynth`] and the supervisor).
    #[must_use]
    pub fn reservoir_generation(&self) -> u64 {
        self.lock_reservoir().generation
    }

    /// A pattern widened to cover both the original format and the sampled
    /// off-format keys, or `None` when the reservoir is empty.
    #[must_use]
    pub fn resynthesize_pattern(&self) -> Option<KeyPattern> {
        self.resynth_snapshot().map(|(widened, _)| widened)
    }

    /// One consistent snapshot for a background resynthesis job: the
    /// reservoir-widened pattern plus the generation it was taken at, read
    /// under a single reservoir lock. `None` when no drift was sampled.
    #[must_use]
    pub fn resynth_snapshot(&self) -> Option<(KeyPattern, u64)> {
        let r = self.lock_reservoir();
        if r.keys.is_empty() {
            return None;
        }
        let mut widened = self.guard.pattern().clone();
        for key in &r.keys {
            widened.join_key(key);
        }
        Some((widened, r.generation))
    }

    /// Offers one off-format key to the reservoir. Sampling must never
    /// block the hash path, so contention skips the offer — but a
    /// *poisoned* lock is recovered, not skipped: treating poison as
    /// "busy" would silently disable sampling forever after one panic.
    #[inline]
    fn offer_to_reservoir(&self, key: &[u8]) {
        match self.reservoir.try_lock() {
            Ok(mut r) => r.offer(key),
            Err(TryLockError::Poisoned(p)) => p.into_inner().offer(key),
            Err(TryLockError::WouldBlock) => {}
        }
    }

    /// The hash used for off-format keys (and, in degraded mode, for all
    /// keys): the fallback mixed under [`OFF_FORMAT_TAG`] and finalized, so
    /// the two routing domains cannot alias by construction.
    #[inline]
    fn off_format_hash(&self, key: &[u8]) -> u64
    where
        G: ByteHash,
    {
        fmix64(self.fallback.hash_bytes(key) ^ OFF_FORMAT_TAG)
    }
}

impl<G> GuardedHash<SynthesizedHash, G> {
    /// Re-synthesizes the specialized hash from the reservoir-widened
    /// pattern and arms the guard again (mode returns to
    /// [`GuardMode::Guarded`], counters reset).
    ///
    /// The synthesized plan is validated before anything is mutated, so a
    /// failure leaves the hasher exactly as it was. As with
    /// [`GuardedHash::degrade`], containers must rebuild stored hashes
    /// after this returns [`Resynth::Applied`].
    pub fn resynthesize(&mut self) -> Resynth {
        let family = self.specialized.family();
        let isa = self.specialized.isa();
        let seed = self.specialized.seed();
        self.resynthesize_with(|widened| {
            let plan = crate::synth::synthesize(widened, family);
            crate::plan_io::validate_plan(&plan)?;
            Ok(SynthesizedHash::new(plan, family, isa).with_seed(seed))
        })
    }

    /// [`GuardedHash::resynthesize`] with a caller-supplied synthesis
    /// function — the hook the failure-path tests and custom synthesis
    /// strategies use. `synth` sees the reservoir-widened pattern; an `Err`
    /// leaves mode, stats and reservoir untouched.
    pub fn resynthesize_with<S>(&mut self, synth: S) -> Resynth
    where
        S: FnOnce(&KeyPattern) -> Result<SynthesizedHash, SynthError>,
    {
        let Some((widened, _generation)) = self.resynth_snapshot() else {
            return Resynth::NoDrift;
        };
        match synth(&widened) {
            Err(e) => Resynth::SynthFailed(e),
            Ok(hash) => {
                self.install(hash, &widened);
                Resynth::Applied
            }
        }
    }

    /// Installs a plan produced by a *background* resynthesis job, unless
    /// it is stale: the job's reservoir-generation snapshot must still
    /// match (a competing resynthesis bumps the generation when it clears
    /// the reservoir). Returns whether the plan was installed; a discarded
    /// stale result changes nothing.
    pub fn install_resynthesized(
        &mut self,
        hash: SynthesizedHash,
        widened: &KeyPattern,
        snapshot_generation: u64,
    ) -> bool {
        if self.reservoir_generation() != snapshot_generation {
            return false;
        }
        self.install(hash, widened);
        true
    }

    /// The shared install step: swap the specialized hash, recompile the
    /// guard, clear the reservoir (bumping its generation), reset the
    /// counters, and re-arm. Only called with an already-validated hash.
    fn install(&mut self, hash: SynthesizedHash, widened: &KeyPattern) {
        self.specialized = hash;
        self.guard = FormatGuard::compile(widened);
        self.lock_reservoir().clear();
        self.stats.reset();
        self.mode.store(GuardMode::Guarded as u8, Ordering::Relaxed);
    }

    /// Builds a guarded hash by synthesizing `family` for `pattern`.
    #[must_use]
    pub fn from_pattern(pattern: &KeyPattern, family: Family, fallback: G) -> Self {
        GuardedHash::new(
            pattern,
            SynthesizedHash::from_pattern(pattern, family),
            fallback,
        )
    }

    /// Builds a guarded hash by inferring a pattern from example keys.
    ///
    /// # Errors
    ///
    /// Returns [`crate::hash::SynthError::EmptyExampleSet`] when `keys` is
    /// empty.
    pub fn from_examples<'a, I>(
        keys: I,
        family: Family,
        fallback: G,
    ) -> Result<Self, crate::hash::SynthError>
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let pattern = infer_pattern(keys).map_err(|_| crate::hash::SynthError::EmptyExampleSet)?;
        Ok(GuardedHash::from_pattern(&pattern, family, fallback))
    }
}

impl<F: ByteHash, G: ByteHash> ByteHash for GuardedHash<F, G> {
    #[inline]
    fn hash_bytes(&self, key: &[u8]) -> u64 {
        match self.mode() {
            GuardMode::Degraded => return self.off_format_hash(key),
            GuardMode::Keyed => return self.keyed_hash(key),
            GuardMode::Guarded => {}
        }
        if self.guard.matches(key) {
            if !self.silent {
                self.stats.in_format.inc();
            }
            self.specialized.hash_bytes(key)
        } else {
            if !self.silent {
                self.stats.off_format.inc();
                self.offer_to_reservoir(key);
            }
            self.off_format_hash(key)
        }
    }
}

impl<F: crate::hash::HashBatch, G: ByteHash> crate::hash::HashBatch for GuardedHash<F, G> {
    /// Batched guarded hashing with scalar-identical observable behavior:
    /// the same keys take the same routes, the drift counters advance by
    /// the same amounts, and the reservoir sees the same offers in the same
    /// order as `keys.iter().map(|k| self.hash_bytes(k))` would produce.
    ///
    /// Chunks where every key passes [`FormatGuard::check_batch`] stay on
    /// the fast path — one batched guard check, one counter update, one
    /// specialized `hash_batch` call. Chunks containing an off-format key
    /// fall back to per-key routing so reservoir sampling and tagging are
    /// exactly the scalar path's.
    fn hash_batch(&self, keys: &[&[u8]], out: &mut [u64]) {
        assert_eq!(keys.len(), out.len(), "batch output length mismatch");
        match self.mode() {
            GuardMode::Degraded => {
                for (key, slot) in keys.iter().zip(out.iter_mut()) {
                    *slot = self.off_format_hash(key);
                }
                return;
            }
            GuardMode::Keyed => {
                for (key, slot) in keys.iter().zip(out.iter_mut()) {
                    *slot = self.keyed_hash(key);
                }
                return;
            }
            GuardMode::Guarded => {}
        }
        let mut verdicts = [false; 8];
        let mut start = 0usize;
        while start < keys.len() {
            let n = (keys.len() - start).min(8);
            let chunk = &keys[start..start + n];
            self.guard.check_batch(chunk, &mut verdicts[..n]);
            if verdicts[..n].iter().all(|&v| v) {
                if !self.silent {
                    self.stats.in_format.add(n as u64);
                }
                self.specialized
                    .hash_batch(chunk, &mut out[start..start + n]);
            } else {
                for (lane, (&key, &ok)) in chunk.iter().zip(&verdicts[..n]).enumerate() {
                    out[start + lane] = if ok {
                        if !self.silent {
                            self.stats.in_format.inc();
                        }
                        self.specialized.hash_bytes(key)
                    } else {
                        if !self.silent {
                            self.stats.off_format.inc();
                            self.offer_to_reservoir(key);
                        }
                        self.off_format_hash(key)
                    };
                }
            }
            start += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::stl_hash_bytes;
    use crate::regex::Regex;
    use crate::synth::Family;

    #[derive(Clone)]
    struct Stl;
    impl ByteHash for Stl {
        fn hash_bytes(&self, key: &[u8]) -> u64 {
            stl_hash_bytes(key, 0)
        }
    }

    fn guard_of(regex: &str) -> (KeyPattern, FormatGuard) {
        let pattern = Regex::compile(regex).expect("compiles");
        let guard = FormatGuard::compile(&pattern);
        (pattern, guard)
    }

    #[test]
    fn guard_agrees_with_pattern_on_ssns() {
        let (pattern, guard) = guard_of(r"\d{3}-\d{2}-\d{4}");
        let cases: [&[u8]; 8] = [
            b"123-45-6789",
            b"000-00-0000",
            b"123-45-678",
            b"123-45-67890",
            b"123_45-6789",
            b"abc-de-fghi",
            b"",
            b"123-45-678\xFF",
        ];
        for key in cases {
            assert_eq!(guard.matches(key), pattern.matches(key), "{key:?}");
        }
    }

    #[test]
    fn guard_checks_every_prefix_position() {
        // Mutating any single byte to a value outside its class must flip
        // the verdict, including positions only covered by the clamped load.
        let (pattern, guard) = guard_of(r"(([0-9]{3})\.){3}[0-9]{3}");
        let base = b"192.168.001.017".to_vec();
        assert!(guard.matches(&base));
        for i in 0..base.len() {
            let mut k = base.clone();
            k[i] = 0xFF; // outside both the digit and the '.' classes
            assert!(!pattern.matches(&k), "position {i} should be constrained");
            assert_eq!(guard.matches(&k), pattern.matches(&k), "position {i}");
        }
    }

    #[test]
    fn guard_handles_variable_length_tails() {
        let (pattern, guard) = guard_of(r"[a-z]{8}[0-9]{0,4}");
        for key in [
            &b"abcdefgh"[..],
            b"abcdefgh1",
            b"abcdefgh1234",
            b"abcdefgh12345",
            b"abcdefg",
            b"abcdefgh123x",
        ] {
            assert_eq!(guard.matches(key), pattern.matches(key), "{key:?}");
        }
    }

    #[test]
    fn short_formats_use_the_byte_path() {
        let (pattern, guard) = guard_of(r"\d{4}");
        assert_eq!(guard.word_checks(), 0);
        assert!(guard.matches(b"1234"));
        assert!(!guard.matches(b"123a"));
        assert!(!guard.matches(b"12345"));
        assert_eq!(guard.matches(b"0000"), pattern.matches(b"0000"));
    }

    #[test]
    fn fully_variable_words_compile_away() {
        // 16 fully variable bytes: no constant bits anywhere, so the word
        // list is empty and only the length check remains.
        let pattern = KeyPattern::fixed(vec![crate::BytePattern::ANY; 16]);
        let guard = FormatGuard::compile(&pattern);
        assert_eq!(guard.word_checks(), 0);
        assert!(guard.matches(&[0xFF; 16]));
        assert!(!guard.matches(&[0xFF; 15]));
    }

    #[test]
    fn guarded_hash_routes_and_counts() {
        let pattern =
            Regex::compile(r"\d{3}-\d{2}-\d{4}").expect("test regex is valid by construction");
        let inner = SynthesizedHash::from_pattern(&pattern, Family::OffXor);
        let guarded = GuardedHash::new(&pattern, inner.clone(), Stl);
        assert_eq!(
            guarded.hash_bytes(b"123-45-6789"),
            inner.hash_bytes(b"123-45-6789")
        );
        let off = guarded.hash_bytes(b"drifted key!");
        assert_ne!(off, inner.hash_bytes(b"drifted key!"));
        assert_eq!(guarded.stats().in_format(), 1);
        assert_eq!(guarded.stats().off_format(), 1);
        assert!((guarded.stats().off_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn off_format_domain_is_tagged() {
        let pattern = Regex::compile(r"\d{11}").expect("test regex is valid by construction");
        let guarded = GuardedHash::from_pattern(&pattern, Family::Naive, Stl);
        let key = b"hello world"; // same length as the format, off-format bytes
        assert_ne!(guarded.hash_bytes(key), stl_hash_bytes(key, 0));
    }

    #[test]
    fn degraded_mode_uses_the_fallback_for_everything() {
        let pattern =
            Regex::compile(r"\d{3}-\d{2}-\d{4}").expect("test regex is valid by construction");
        let inner = SynthesizedHash::from_pattern(&pattern, Family::Pext);
        let guarded = GuardedHash::new(&pattern, inner.clone(), Stl);
        let clone = guarded.clone();
        guarded.degrade();
        assert!(clone.is_degraded(), "mode is shared across clones");
        assert_ne!(
            clone.hash_bytes(b"123-45-6789"),
            inner.hash_bytes(b"123-45-6789")
        );
        // Degraded hashing is still deterministic.
        assert_eq!(
            clone.hash_bytes(b"123-45-6789"),
            guarded.hash_bytes(b"123-45-6789")
        );
    }

    #[test]
    fn reservoir_samples_off_format_keys() {
        let pattern = Regex::compile(r"\d{8}").expect("test regex is valid by construction");
        let guarded = GuardedHash::from_pattern(&pattern, Family::Naive, Stl);
        for i in 0..200u32 {
            let key = format!("drift-{i:04}");
            let _ = guarded.hash_bytes(key.as_bytes());
        }
        let sample = guarded.reservoir_keys();
        assert_eq!(sample.len(), RESERVOIR_CAP);
        assert!(sample.iter().all(|k| k.starts_with(b"drift-")));
    }

    #[test]
    fn resynthesis_widens_the_pattern_and_rearms() {
        let pattern = Regex::compile(r"\d{8}").expect("test regex is valid by construction");
        let mut guarded = GuardedHash::from_pattern(&pattern, Family::OffXor, Stl);
        for i in 0..50u32 {
            let _ = guarded.hash_bytes(format!("{i:07}x").as_bytes());
        }
        guarded.degrade();
        assert_eq!(guarded.resynthesize(), Resynth::Applied);
        assert!(!guarded.is_degraded());
        assert_eq!(guarded.stats().total(), 0);
        // Both the original and the drifted shape now pass the guard.
        assert!(guarded.guard().matches(b"12345678"));
        assert!(guarded.guard().matches(b"0000000x"));
    }

    #[test]
    fn check_batch_agrees_with_scalar_matches() {
        for regex in [
            r"\d{3}-\d{2}-\d{4}",
            r"(([0-9]{3})\.){3}[0-9]{3}",
            r"[a-z]{8}[0-9]{0,4}",
            r"\d{4}",
        ] {
            let (pattern, guard) = guard_of(regex);
            let keys: Vec<Vec<u8>> = vec![
                b"123-45-6789".to_vec(),
                b"192.168.001.017".to_vec(),
                b"abcdefgh12".to_vec(),
                b"1234".to_vec(),
                b"".to_vec(),
                b"totally off format!".to_vec(),
                b"123-45-678".to_vec(),
                vec![0xFF; 11],
                b"abcdefgh123x".to_vec(),
                b"999-99-9999".to_vec(),
                b"12345".to_vec(),
            ];
            let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
            for width in [1usize, 3, 7, 8, 11] {
                let batch = &refs[..width];
                let mut verdicts = vec![false; width];
                guard.check_batch(batch, &mut verdicts);
                for (key, &v) in batch.iter().zip(&verdicts) {
                    assert_eq!(v, pattern.matches(key), "{regex} {key:?}");
                }
            }
        }
    }

    #[test]
    fn guarded_hash_batch_matches_scalar_routing_and_counters() {
        use crate::hash::HashBatch;
        let pattern =
            Regex::compile(r"\d{3}-\d{2}-\d{4}").expect("test regex is valid by construction");
        let inner = SynthesizedHash::from_pattern(&pattern, Family::Pext);
        let batched = GuardedHash::new(&pattern, inner.clone(), Stl);
        let scalar = GuardedHash::new(&pattern, inner, Stl);
        let keys: Vec<Vec<u8>> = (0..23)
            .map(|i: u32| {
                if i % 5 == 3 {
                    format!("drifted-{i}").into_bytes()
                } else {
                    format!("{:03}-{:02}-{:04}", i, i % 97, i * 7).into_bytes()
                }
            })
            .collect();
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let mut out = vec![0u64; refs.len()];
        batched.hash_batch(&refs, &mut out);
        let expect: Vec<u64> = refs.iter().map(|k| scalar.hash_bytes(k)).collect();
        assert_eq!(out, expect);
        assert_eq!(batched.stats().in_format(), scalar.stats().in_format());
        assert_eq!(batched.stats().off_format(), scalar.stats().off_format());
        assert_eq!(batched.reservoir_keys(), scalar.reservoir_keys());
    }

    #[test]
    fn degraded_hash_batch_uses_the_fallback_for_everything() {
        use crate::hash::HashBatch;
        let pattern =
            Regex::compile(r"\d{3}-\d{2}-\d{4}").expect("test regex is valid by construction");
        let guarded = GuardedHash::from_pattern(&pattern, Family::OffXor, Stl);
        guarded.degrade();
        let keys: [&[u8]; 2] = [b"123-45-6789", b"off format"];
        let mut out = [0u64; 2];
        guarded.hash_batch(&keys, &mut out);
        for (key, h) in keys.iter().zip(out) {
            assert_eq!(h, guarded.hash_bytes(key));
        }
        assert_eq!(guarded.stats().total(), 0, "degraded mode does not count");
    }

    #[test]
    fn resynthesize_without_drift_is_a_no_op() {
        let pattern = Regex::compile(r"\d{8}").expect("test regex is valid by construction");
        let mut guarded = GuardedHash::from_pattern(&pattern, Family::OffXor, Stl);
        let _ = guarded.hash_bytes(b"12345678");
        assert_eq!(guarded.resynthesize(), Resynth::NoDrift);
    }

    #[test]
    fn failed_resynthesis_leaves_mode_stats_and_reservoir_untouched() {
        // Satellite regression: a reservoir whose widened pattern the
        // synthesis function rejects must not half-apply anything.
        let pattern = Regex::compile(r"\d{8}").expect("test regex is valid by construction");
        let mut guarded = GuardedHash::from_pattern(&pattern, Family::Pext, Stl);
        for i in 0..50u32 {
            let _ = guarded.hash_bytes(format!("{i:07}x").as_bytes());
        }
        guarded.degrade();
        let keys_before = guarded.reservoir_keys();
        let gen_before = guarded.reservoir_generation();
        let stats_before = (guarded.stats().in_format(), guarded.stats().off_format());
        let guard_before = guarded.guard().clone();
        let out = guarded.resynthesize_with(|widened| {
            // Simulate from_examples rejecting the widened pattern with an
            // out-of-bounds-load shape error.
            Err(SynthError::PlanLoadOutOfBounds {
                offset: widened.max_len() as u32,
                width: 8,
                key_len: widened.max_len(),
            })
        });
        assert!(matches!(out, Resynth::SynthFailed(_)), "{out:?}");
        assert!(guarded.is_degraded(), "mode untouched");
        assert_eq!(
            (guarded.stats().in_format(), guarded.stats().off_format()),
            stats_before,
            "stats untouched"
        );
        assert_eq!(guarded.reservoir_keys(), keys_before, "reservoir untouched");
        assert_eq!(guarded.reservoir_generation(), gen_before);
        assert_eq!(guarded.guard(), &guard_before, "guard untouched");
        // The same reservoir still resynthesizes fine with a working
        // synthesizer afterwards.
        assert_eq!(guarded.resynthesize(), Resynth::Applied);
    }

    #[test]
    fn stale_background_results_are_discarded() {
        let pattern = Regex::compile(r"\d{8}").expect("test regex is valid by construction");
        let mut guarded = GuardedHash::from_pattern(&pattern, Family::OffXor, Stl);
        for i in 0..50u32 {
            let _ = guarded.hash_bytes(format!("{i:07}x").as_bytes());
        }
        let (widened, generation) = guarded.resynth_snapshot().expect("drift sampled");
        let replacement = SynthesizedHash::from_pattern(&widened, Family::OffXor);
        // A competing resynthesis lands first and bumps the generation.
        assert_eq!(guarded.resynthesize(), Resynth::Applied);
        assert_ne!(guarded.reservoir_generation(), generation);
        let guard_after_first = guarded.guard().clone();
        assert!(
            !guarded.install_resynthesized(replacement.clone(), &widened, generation),
            "stale snapshot generation must be discarded"
        );
        assert_eq!(
            guarded.guard(),
            &guard_after_first,
            "discard changed nothing"
        );
        // With the current generation the same plan installs.
        let current = guarded.reservoir_generation();
        assert!(guarded.install_resynthesized(replacement, &widened, current));
    }

    #[test]
    fn poisoned_reservoir_recovers_instead_of_disabling_sampling() {
        // Satellite regression: after a panic poisons the reservoir mutex,
        // sampling, snapshots and resynthesis must all keep working.
        let pattern = Regex::compile(r"\d{8}").expect("test regex is valid by construction");
        let mut guarded = GuardedHash::from_pattern(&pattern, Family::OffXor, Stl);
        let _ = guarded.hash_bytes(b"0000000x"); // one sampled key
        let poisoner = guarded.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner
                .reservoir
                .lock()
                .expect("first lock of a not-yet-poisoned mutex");
            panic!("poison the reservoir");
        })
        .join();
        assert!(guarded.reservoir.is_poisoned(), "setup: mutex is poisoned");
        // Scalar and batched sampling still record keys.
        let _ = guarded.hash_bytes(b"1111111x");
        use crate::hash::HashBatch;
        let keys: [&[u8]; 1] = [b"2222222x"];
        let mut out = [0u64; 1];
        guarded.hash_batch(&keys, &mut out);
        let sampled = guarded.reservoir_keys();
        assert!(sampled.contains(&b"1111111x".to_vec()), "{sampled:?}");
        assert!(sampled.contains(&b"2222222x".to_vec()), "{sampled:?}");
        // Snapshots and resynthesis recover the guard too.
        assert!(guarded.resynth_snapshot().is_some());
        assert_eq!(guarded.resynthesize(), Resynth::Applied);
        assert!(guarded.guard().matches(b"1111111x"));
    }

    #[test]
    fn keyed_mode_routes_everything_through_the_secret() {
        let pattern =
            Regex::compile(r"\d{3}-\d{2}-\d{4}").expect("test regex is valid by construction");
        let inner = SynthesizedHash::from_pattern(&pattern, Family::OffXor);
        let guarded = GuardedHash::new(&pattern, inner.clone(), Stl);
        let clone = guarded.clone();
        let seeds = crate::hash::keyed::FixedSeedSource::new(0x5E9E);
        guarded.escalate_keyed(&seeds);
        assert!(clone.is_keyed(), "mode is shared across clones");
        // In-format keys no longer take the specialized route, and the
        // code is exactly the tagged keyed domain.
        let (k0, k1) = guarded.current_seed();
        assert_eq!(
            clone.hash_bytes(b"123-45-6789"),
            fmix64(siphash13(k0, k1, b"123-45-6789") ^ KEYED_TAG)
        );
        assert_ne!(
            clone.hash_bytes(b"123-45-6789"),
            inner.hash_bytes(b"123-45-6789")
        );
        // Keyed hashing bumps no drift counters and samples nothing: the
        // traffic is presumed adversarial, not drifted.
        let _ = clone.hash_bytes(b"attack key!");
        assert_eq!(clone.stats().total(), 0);
        assert!(clone.reservoir_keys().is_empty());
    }

    #[test]
    fn keyed_batch_agrees_with_scalar() {
        use crate::hash::HashBatch;
        let pattern = Regex::compile(r"\d{8}").expect("test regex is valid by construction");
        let guarded = GuardedHash::from_pattern(&pattern, Family::Naive, Stl);
        guarded.escalate_keyed(&crate::hash::keyed::FixedSeedSource::new(9));
        let keys: Vec<&[u8]> = vec![b"12345678", b"attack!", b"00000000", b"x"];
        let mut out = vec![0u64; keys.len()];
        guarded.hash_batch(&keys, &mut out);
        for (key, code) in keys.iter().zip(&out) {
            assert_eq!(guarded.hash_bytes(key), *code);
        }
    }

    #[test]
    fn epoch_frozen_pins_the_keyed_seed_across_rotation() {
        let pattern = Regex::compile(r"\d{8}").expect("test regex is valid by construction");
        let guarded = GuardedHash::from_pattern(&pattern, Family::OffXor, Stl);
        let seeds = crate::hash::keyed::FixedSeedSource::new(42);
        guarded.escalate_keyed(&seeds);
        let before = guarded.hash_bytes(b"12345678");
        let frozen = guarded.epoch_frozen(GuardMode::Keyed);
        guarded.rotate_seed(&seeds);
        assert_ne!(
            guarded.hash_bytes(b"12345678"),
            before,
            "rotation must change live hashes"
        );
        assert_eq!(
            frozen.hash_bytes(b"12345678"),
            before,
            "frozen epoch must reproduce the pre-rotation hashes"
        );
    }

    #[test]
    fn rearm_restores_the_specialized_route() {
        let pattern =
            Regex::compile(r"\d{3}-\d{2}-\d{4}").expect("test regex is valid by construction");
        let inner = SynthesizedHash::from_pattern(&pattern, Family::Pext);
        let guarded = GuardedHash::new(&pattern, inner.clone(), Stl);
        let _ = guarded.hash_bytes(b"not an ssn"); // sampled + counted
        guarded.escalate_keyed(&crate::hash::keyed::FixedSeedSource::new(7));
        guarded.rearm();
        assert_eq!(guarded.mode(), GuardMode::Guarded);
        assert_eq!(
            guarded.hash_bytes(b"123-45-6789"),
            inner.hash_bytes(b"123-45-6789")
        );
        // Counters reset and the (possibly attacker-filled) sample is gone.
        assert_eq!(guarded.stats().off_format(), 0);
        assert!(guarded.reservoir_keys().is_empty());
    }

    #[test]
    fn escalation_path_survives_a_poisoned_reservoir() {
        // Satellite regression: the ladder must work even after a panic
        // poisons the reservoir mutex — `rearm` clears it through the
        // recovering lock, and sampling resumes afterwards.
        let pattern = Regex::compile(r"\d{8}").expect("test regex is valid by construction");
        let guarded = GuardedHash::from_pattern(&pattern, Family::Naive, Stl);
        let poisoner = guarded.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner
                .reservoir
                .lock()
                .expect("first lock of a not-yet-poisoned mutex");
            panic!("poison the reservoir");
        })
        .join();
        assert!(guarded.reservoir.is_poisoned(), "setup: mutex is poisoned");
        let seeds = crate::hash::keyed::FixedSeedSource::new(3);
        guarded.escalate_keyed(&seeds);
        guarded.rotate_seed(&seeds);
        let keyed = guarded.hash_bytes(b"12345678");
        assert_eq!(keyed, guarded.hash_bytes(b"12345678"));
        guarded.rearm();
        assert_eq!(guarded.mode(), GuardMode::Guarded);
        let _ = guarded.hash_bytes(b"off format"); // sampling works again
        assert!(guarded.reservoir_keys().contains(&b"off format".to_vec()));
    }

    #[test]
    fn window_counts_cover_only_traffic_since_the_last_roll() {
        let stats = GuardStats::default();
        stats.in_format.add(100);
        stats.off_format.add(3);
        assert_eq!(stats.window_counts(), (3, 103));
        stats.roll_window();
        assert_eq!(stats.window_counts(), (0, 0));
        stats.off_format.add(7);
        stats.in_format.add(13);
        assert_eq!(stats.window_counts(), (7, 20));
        assert_eq!(stats.total(), 123, "lifetime totals are untouched");
        stats.reset();
        assert_eq!(stats.window_counts(), (0, 0));
        assert_eq!(stats.total(), 0);
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        // Pinned semantics: every counter saturates at u64::MAX. A wrapped
        // counter would report a near-zero lifetime total after centuries
        // of uptime — worse, a wrapped window base could make the window
        // delta exceed the lifetime count.
        let stats = GuardStats::default();
        stats.in_format.add(u64::MAX - 1);
        assert_eq!(stats.in_format(), u64::MAX - 1);
        stats.in_format.inc();
        assert_eq!(stats.in_format(), u64::MAX);
        stats.in_format.inc();
        assert_eq!(stats.in_format(), u64::MAX, "bump saturates");
        stats.in_format.add(1 << 40);
        assert_eq!(stats.in_format(), u64::MAX, "bump_many saturates");
        // total() saturates instead of wrapping past 2^64.
        stats.off_format.add(7);
        assert_eq!(stats.total(), u64::MAX);
        // Window deltas never underflow, even against a saturated base.
        stats.roll_window();
        assert_eq!(stats.window_counts(), (0, 0));
        stats.off_format.add(5);
        assert_eq!(stats.window_counts(), (5, 5));
    }

    #[test]
    fn concurrent_bumps_are_not_lost() {
        // The counters are true atomic read-modify-writes: N threads each
        // recording M keys must account for exactly N*M observations.
        let stats = std::sync::Arc::new(GuardStats::default());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let stats = std::sync::Arc::clone(&stats);
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        stats.in_format.inc();
                    }
                });
            }
        });
        assert_eq!(stats.in_format(), 40_000);
    }

    #[test]
    fn detached_copies_share_no_drift_state() {
        let pattern =
            Regex::compile(r"\d{3}-\d{2}-\d{4}").expect("test regex is valid by construction");
        let inner = SynthesizedHash::from_pattern(&pattern, Family::OffXor);
        let original = GuardedHash::new(&pattern, inner.clone(), Stl);
        let detached = original.detached();
        // Hashes agree; accounting does not flow between the copies.
        let key: &[u8] = b"123-45-6789";
        assert_eq!(original.hash_bytes(key), detached.hash_bytes(key));
        let _ = original.hash_bytes(b"off-format!");
        assert_eq!(original.stats().total(), 2);
        assert_eq!(detached.stats().total(), 1);
        // Degrading one side leaves the other guarded.
        original.degrade();
        assert!(original.is_degraded());
        assert!(!detached.is_degraded(), "detached copy keeps its own mode");
        assert_eq!(detached.hash_bytes(key), inner.hash_bytes(key));
    }

    #[test]
    fn epoch_frozen_copies_pin_routing_and_stay_silent() {
        let pattern =
            Regex::compile(r"\d{3}-\d{2}-\d{4}").expect("test regex is valid by construction");
        let inner = SynthesizedHash::from_pattern(&pattern, Family::OffXor);
        let live = GuardedHash::new(&pattern, inner.clone(), Stl);
        let frozen_guarded = live.epoch_frozen(GuardMode::Guarded);
        let frozen_degraded = live.epoch_frozen(GuardMode::Degraded);
        let key: &[u8] = b"123-45-6789";
        let off: &[u8] = b"not an ssn!";

        // The pinned copies ignore the shared flip.
        live.degrade();
        assert_eq!(frozen_guarded.mode(), GuardMode::Guarded);
        assert_eq!(frozen_guarded.hash_bytes(key), inner.hash_bytes(key));
        assert_eq!(
            frozen_degraded.hash_bytes(key),
            live.hash_bytes(key),
            "degraded-pinned copy matches the live degraded hash"
        );

        // Silent copies never touch the shared counters or the reservoir.
        let before = live.stats().total();
        let _ = frozen_guarded.hash_bytes(off);
        let _ = frozen_degraded.hash_bytes(off);
        use crate::hash::HashBatch;
        let mut out = [0u64; 2];
        frozen_guarded.hash_batch(&[key, off], &mut out);
        assert_eq!(out[0], inner.hash_bytes(key));
        assert_eq!(live.stats().total(), before);
        assert!(frozen_guarded.reservoir_keys().is_empty());
    }
}
