//! A from-scratch AES round primitive.
//!
//! The paper's **Aes** family combines key words with one AES encode round
//! (`aesenc` on x86, `AESE`+`AESMC` on aarch64) instead of xor: the round's
//! nonlinear S-box and MixColumns diffusion buy better hash distribution at
//! the cost of a slower combine. This module implements the full round
//! (SubBytes, ShiftRows, MixColumns, AddRoundKey) in portable software,
//! dispatches to AES-NI when the host has it, and — to prove the primitive
//! correct — implements complete AES-128 encryption on top of it, validated
//! against the FIPS-197 known-answer vector.

use crate::bits::Isa;

/// The AES S-box (FIPS-197 Figure 7).
#[rustfmt::skip]
pub const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// A 128-bit AES state / block, stored in the byte order of the `aesenc`
/// instruction (column-major: byte `i` is row `i % 4`, column `i / 4`).
pub type Block = [u8; 16];

/// Multiplication by `x` in GF(2⁸) with the AES polynomial `x⁸+x⁴+x³+x+1`.
#[inline]
#[must_use]
pub fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

/// SubBytes: applies the S-box to every state byte.
#[must_use]
pub fn sub_bytes(mut state: Block) -> Block {
    for b in &mut state {
        *b = SBOX[*b as usize];
    }
    state
}

/// ShiftRows: rotates row `r` left by `r` positions (column-major layout).
#[must_use]
pub fn shift_rows(state: Block) -> Block {
    let mut out = [0u8; 16];
    for col in 0..4 {
        for row in 0..4 {
            out[col * 4 + row] = state[((col + row) % 4) * 4 + row];
        }
    }
    out
}

/// MixColumns: multiplies each state column by the fixed MDS matrix.
#[must_use]
pub fn mix_columns(state: Block) -> Block {
    let mut out = [0u8; 16];
    for col in 0..4 {
        let a = &state[col * 4..col * 4 + 4];
        let t = a[0] ^ a[1] ^ a[2] ^ a[3];
        for row in 0..4 {
            out[col * 4 + row] = a[row] ^ t ^ xtime(a[row] ^ a[(row + 1) % 4]);
        }
    }
    out
}

/// One AES encode round exactly as `aesenc` computes it:
/// `MixColumns(ShiftRows(SubBytes(state))) ^ round_key`.
///
/// This is the mixing primitive of the **Aes** hash family. Uses AES-NI when
/// `isa` is [`Isa::Native`] and the CPU supports it.
///
/// # Examples
///
/// ```
/// use sepe_core::aes::aesenc;
/// use sepe_core::bits::Isa;
///
/// let mixed = aesenc([0u8; 16], [0u8; 16], Isa::Portable);
/// assert_ne!(mixed, [0u8; 16]); // the S-box maps 0 to 0x63, then diffuses
/// ```
#[inline]
#[must_use]
pub fn aesenc(state: Block, round_key: Block, isa: Isa) -> Block {
    #[cfg(target_arch = "x86_64")]
    {
        if isa == Isa::Native && aesni_available() {
            // SAFETY: guarded by the runtime AES-NI check above.
            return unsafe { aesenc_hw(state, round_key) };
        }
    }
    let _ = isa;
    aesenc_soft(state, round_key)
}

/// The portable implementation of one AES encode round.
#[must_use]
pub fn aesenc_soft(state: Block, round_key: Block) -> Block {
    let mut out = mix_columns(shift_rows(sub_bytes(state)));
    for (o, k) in out.iter_mut().zip(round_key.iter()) {
        *o ^= k;
    }
    out
}

/// Whether the host CPU exposes AES-NI.
#[must_use]
pub fn aesni_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| std::arch::is_x86_feature_detected!("aes"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "aes")]
unsafe fn aesenc_hw(state: Block, round_key: Block) -> Block {
    use std::arch::x86_64::{__m128i, _mm_aesenc_si128, _mm_loadu_si128, _mm_storeu_si128};
    let s = _mm_loadu_si128(state.as_ptr() as *const __m128i);
    let k = _mm_loadu_si128(round_key.as_ptr() as *const __m128i);
    let r = _mm_aesenc_si128(s, k);
    let mut out = [0u8; 16];
    _mm_storeu_si128(out.as_mut_ptr() as *mut __m128i, r);
    out
}

/// The final AES round (no MixColumns), needed to validate the primitive by
/// running full AES-128.
#[must_use]
pub fn aesenc_last_soft(state: Block, round_key: Block) -> Block {
    let mut out = shift_rows(sub_bytes(state));
    for (o, k) in out.iter_mut().zip(round_key.iter()) {
        *o ^= k;
    }
    out
}

/// Expands a 128-bit key into the eleven AES-128 round keys (FIPS-197 §5.2).
#[must_use]
pub fn key_expansion_128(key: Block) -> [Block; 11] {
    let mut w = [[0u8; 4]; 44];
    for (i, word) in w.iter_mut().take(4).enumerate() {
        word.copy_from_slice(&key[i * 4..i * 4 + 4]);
    }
    let mut rcon = 1u8;
    for i in 4..44 {
        let mut temp = w[i - 1];
        if i % 4 == 0 {
            temp.rotate_left(1);
            for b in &mut temp {
                *b = SBOX[*b as usize];
            }
            temp[0] ^= rcon;
            rcon = xtime(rcon);
        }
        for j in 0..4 {
            w[i][j] = w[i - 4][j] ^ temp[j];
        }
    }
    let mut keys = [[0u8; 16]; 11];
    for (r, rk) in keys.iter_mut().enumerate() {
        for c in 0..4 {
            rk[c * 4..c * 4 + 4].copy_from_slice(&w[r * 4 + c]);
        }
    }
    keys
}

/// Full AES-128 block encryption built from the round primitives. Exists to
/// *validate* [`aesenc_soft`] against FIPS-197; the hash families only use
/// single rounds.
#[must_use]
pub fn aes128_encrypt_block(plaintext: Block, key: Block) -> Block {
    let keys = key_expansion_128(key);
    let mut state = plaintext;
    for (s, k) in state.iter_mut().zip(keys[0].iter()) {
        *s ^= k;
    }
    for rk in &keys[1..10] {
        state = aesenc_soft(state, *rk);
    }
    aesenc_last_soft(state, keys[10])
}

/// Folds a 128-bit block into 64 bits by xoring its halves — the final step
/// of the **Aes** hash family.
#[inline]
#[must_use]
pub fn fold_block(block: Block) -> u64 {
    let lo = u64::from_le_bytes(block[..8].try_into().expect("8 bytes"));
    let hi = u64::from_le_bytes(block[8..].try_into().expect("8 bytes"));
    lo ^ hi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_is_a_bijection_without_fixed_points() {
        let mut seen = [false; 256];
        for (i, &s) in SBOX.iter().enumerate() {
            assert!(!seen[s as usize], "S-box repeats {s:#x}");
            seen[s as usize] = true;
            assert_ne!(i as u8, s, "S-box has a fixed point at {i:#x}");
        }
    }

    #[test]
    fn shift_rows_preserves_multiset_and_row_membership() {
        let state: Block = core::array::from_fn(|i| i as u8);
        let shifted = shift_rows(state);
        let mut a = state;
        let mut b = shifted;
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // Row 0 is untouched.
        for col in 0..4 {
            assert_eq!(shifted[col * 4], state[col * 4]);
        }
    }

    #[test]
    fn mix_columns_known_vector() {
        // FIPS-197 / Wikipedia MixColumns test column: db 13 53 45 -> 8e 4d a1 bc.
        let mut state = [0u8; 16];
        state[..4].copy_from_slice(&[0xdb, 0x13, 0x53, 0x45]);
        let out = mix_columns(state);
        assert_eq!(&out[..4], &[0x8e, 0x4d, 0xa1, 0xbc]);
        // Identity column: 01 01 01 01 maps to itself.
        let mut id = [0u8; 16];
        id[4..8].copy_from_slice(&[1, 1, 1, 1]);
        assert_eq!(&mix_columns(id)[4..8], &[1, 1, 1, 1]);
    }

    #[test]
    fn fips_197_known_answer() {
        // FIPS-197 Appendix C.1.
        let key: Block = core::array::from_fn(|i| i as u8);
        let plain: Block = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let expected: Block = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        assert_eq!(aes128_encrypt_block(plain, key), expected);
    }

    #[test]
    fn key_expansion_first_round_key_matches_fips_197_a1() {
        // FIPS-197 Appendix A.1: key 2b7e1516... expands so that w[4..8] =
        // a0fafe17 88542cb1 23a33939 2a6c7605.
        let key: Block = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let keys = key_expansion_128(key);
        assert_eq!(
            keys[1],
            [
                0xa0, 0xfa, 0xfe, 0x17, 0x88, 0x54, 0x2c, 0xb1, 0x23, 0xa3, 0x39, 0x39, 0x2a, 0x6c,
                0x76, 0x05
            ]
        );
    }

    #[test]
    fn hardware_and_software_rounds_agree() {
        if !aesni_available() {
            return;
        }
        let mut state: Block = core::array::from_fn(|i| (i * 17 + 3) as u8);
        let key: Block = core::array::from_fn(|i| (i * 29 + 11) as u8);
        for _ in 0..16 {
            let hw = aesenc(state, key, Isa::Native);
            let sw = aesenc(state, key, Isa::Portable);
            assert_eq!(hw, sw);
            state = sw;
        }
    }

    #[test]
    fn fold_block_xors_halves() {
        let mut b = [0u8; 16];
        b[0] = 0xFF;
        b[8] = 0xFF;
        assert_eq!(fold_block(b), 0);
        b[8] = 0;
        assert_eq!(fold_block(b), 0xFF);
    }
}
