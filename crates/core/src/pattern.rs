//! Byte-level key patterns: the intermediate representation between format
//! inference (Section 3.1 of the paper) and code generation (Section 3.2).
//!
//! A [`KeyPattern`] records, for every byte position of a key format, which
//! bit pairs are constant and what their constant values are. It is produced
//! either by joining example keys in the quad-semilattice ([`crate::infer`])
//! or by expanding a regular expression ([`crate::regex`]), and it is the
//! sole input of the synthesis pipeline ([`crate::synth`]).

use crate::lattice::{quads_of_byte, Quad};
use std::fmt;

/// The constant/variable structure of a single byte position.
///
/// `const_mask` has a bit set for every bit that is constant across all keys;
/// `const_bits` holds the constant values (and is zero on variable bits).
/// Because the lattice works on bit pairs, `const_mask` is always composed of
/// whole two-bit groups (`0b11`, `0b1100`, ...).
///
/// # Examples
///
/// ```
/// use sepe_core::pattern::BytePattern;
///
/// // An ASCII digit: upper nibble constant 0011, lower nibble variable.
/// let digit = BytePattern::from_bytes(b"0123456789".iter().copied()).unwrap();
/// assert_eq!(digit.const_mask(), 0xF0);
/// assert_eq!(digit.const_bits(), 0x30);
/// assert_eq!(digit.variable_mask(), 0x0F);
/// assert!(!digit.is_const());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BytePattern {
    const_mask: u8,
    const_bits: u8,
}

impl BytePattern {
    /// A fully variable byte (all four bit pairs are `⊤`).
    pub const ANY: BytePattern = BytePattern {
        const_mask: 0,
        const_bits: 0,
    };

    /// Creates a pattern for a fully constant byte.
    #[must_use]
    pub fn literal(byte: u8) -> Self {
        BytePattern {
            const_mask: 0xFF,
            const_bits: byte,
        }
    }

    /// Creates a pattern from four lattice quads, most significant first.
    #[must_use]
    pub fn from_quads(quads: [Quad; 4]) -> Self {
        let mut mask = 0u8;
        let mut bits = 0u8;
        for (i, q) in quads.iter().enumerate() {
            let shift = 6 - 2 * i as u8;
            if let Quad::Const(v) = q {
                mask |= 0b11 << shift;
                bits |= v << shift;
            }
        }
        BytePattern {
            const_mask: mask,
            const_bits: bits,
        }
    }

    /// Joins an iterator of example bytes in the quad-semilattice.
    ///
    /// Returns `None` when the iterator is empty (the join of zero keys is
    /// undefined; the paper always starts from at least one example).
    pub fn from_bytes<I: IntoIterator<Item = u8>>(bytes: I) -> Option<Self> {
        let mut iter = bytes.into_iter();
        let first = iter.next()?;
        let mut quads = quads_of_byte(first);
        for b in iter {
            quads = crate::lattice::join_bytes(quads, b);
        }
        Some(BytePattern::from_quads(quads))
    }

    /// The four lattice quads of this pattern, most significant first.
    #[must_use]
    pub fn quads(self) -> [Quad; 4] {
        let mut out = [Quad::Top; 4];
        for (i, slot) in out.iter_mut().enumerate() {
            let shift = 6 - 2 * i as u8;
            if (self.const_mask >> shift) & 0b11 == 0b11 {
                *slot = Quad::Const((self.const_bits >> shift) & 0b11);
            }
        }
        out
    }

    /// Joins two byte patterns pairwise in the lattice.
    #[must_use]
    pub fn join(self, other: BytePattern) -> BytePattern {
        let a = self.quads();
        let b = other.quads();
        BytePattern::from_quads([
            a[0].join(b[0]),
            a[1].join(b[1]),
            a[2].join(b[2]),
            a[3].join(b[3]),
        ])
    }

    /// Joins this pattern with a concrete byte.
    #[must_use]
    pub fn join_byte(self, byte: u8) -> BytePattern {
        self.join(BytePattern::literal(byte))
    }

    /// Mask of bits that are constant across all example keys.
    #[must_use]
    pub fn const_mask(self) -> u8 {
        self.const_mask
    }

    /// The values of the constant bits (zero on variable bits).
    #[must_use]
    pub fn const_bits(self) -> u8 {
        self.const_bits
    }

    /// Mask of bits that vary between keys — exactly the bits a `pext`
    /// extraction keeps (Section 3.2.3).
    #[must_use]
    pub fn variable_mask(self) -> u8 {
        !self.const_mask
    }

    /// Whether every bit of this byte is constant.
    #[must_use]
    pub fn is_const(self) -> bool {
        self.const_mask == 0xFF
    }

    /// Whether every bit of this byte varies.
    #[must_use]
    pub fn is_any(self) -> bool {
        self.const_mask == 0
    }

    /// Whether `byte` is compatible with this pattern (its constant bits
    /// match).
    #[must_use]
    pub fn matches(self, byte: u8) -> bool {
        byte & self.const_mask == self.const_bits
    }

    /// Number of distinct byte values compatible with this pattern.
    #[must_use]
    pub fn cardinality(self) -> u16 {
        1u16 << self.const_mask.count_zeros()
    }

    /// Iterates over every byte value compatible with this pattern, in
    /// ascending order.
    pub fn possible_bytes(self) -> impl Iterator<Item = u8> {
        (0u16..=255)
            .map(|b| b as u8)
            .filter(move |&b| self.matches(b))
    }
}

impl Default for BytePattern {
    fn default() -> Self {
        BytePattern::ANY
    }
}

impl fmt::Display for BytePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for q in self.quads() {
            write!(f, "{q}")?;
        }
        Ok(())
    }
}

/// The inferred or declared format of a whole key.
///
/// `bytes[i]` describes byte position `i`. Positions `min_len..` are present
/// only in the longer keys of a variable-length format; the paper treats the
/// missing bytes of shorter keys as `⊤` quads when *joining*, but remembers
/// the length range so that code generation can dispatch between the
/// fixed-length strategy (Section 3.2.2) and the skip-table strategy
/// (Section 3.2.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyPattern {
    bytes: Vec<BytePattern>,
    min_len: usize,
}

impl KeyPattern {
    /// Creates a fixed-length pattern from per-byte patterns.
    #[must_use]
    pub fn fixed(bytes: Vec<BytePattern>) -> Self {
        let min_len = bytes.len();
        KeyPattern { bytes, min_len }
    }

    /// Creates a variable-length pattern.
    ///
    /// # Panics
    ///
    /// Panics if `min_len > bytes.len()`.
    #[must_use]
    pub fn with_min_len(bytes: Vec<BytePattern>, min_len: usize) -> Self {
        assert!(
            min_len <= bytes.len(),
            "min_len {min_len} exceeds pattern length {}",
            bytes.len()
        );
        KeyPattern { bytes, min_len }
    }

    /// Per-byte patterns; the slice length is the maximum key length.
    #[must_use]
    pub fn bytes(&self) -> &[BytePattern] {
        &self.bytes
    }

    /// Maximum key length, in bytes.
    #[must_use]
    pub fn max_len(&self) -> usize {
        self.bytes.len()
    }

    /// Minimum key length, in bytes.
    #[must_use]
    pub fn min_len(&self) -> usize {
        self.min_len
    }

    /// Whether every key of this format has the same length — the *length*
    /// constraint of Figure 3, which enables full unrolling.
    #[must_use]
    pub fn is_fixed_len(&self) -> bool {
        self.min_len == self.bytes.len()
    }

    /// Whether this pattern is empty (matches only the empty key).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Total number of variable (`⊤`) bits — the "relevant bits" of the
    /// paper's Section 4.2. A format with at most 64 relevant bits admits a
    /// `pext` bijection.
    #[must_use]
    pub fn variable_bits(&self) -> usize {
        self.bytes
            .iter()
            .map(|b| b.variable_mask().count_ones() as usize)
            .sum()
    }

    /// Whether `key` matches this pattern: its length is within range and
    /// every byte agrees with the constant bits.
    #[must_use]
    pub fn matches(&self, key: &[u8]) -> bool {
        if key.len() < self.min_len || key.len() > self.bytes.len() {
            return false;
        }
        key.iter().zip(&self.bytes).all(|(&b, p)| p.matches(b))
    }

    /// Joins another key into this pattern, extending it if the key is
    /// longer. Mirrors the `k_j[i] = ⊤` convention for missing bytes.
    pub fn join_key(&mut self, key: &[u8]) {
        if key.len() > self.bytes.len() {
            // Positions the pattern has never seen were absent from every
            // previous key, which contributes ⊤ there (s_j[i] = ⊤); joining
            // the new byte with ⊤ stays ⊤.
            self.bytes.resize(key.len(), BytePattern::ANY);
        }
        for (i, slot) in self.bytes.iter_mut().enumerate() {
            match key.get(i) {
                Some(&b) => *slot = slot.join_byte(b),
                // Missing byte: the paper sets s_j[i] = ⊤.
                None => *slot = BytePattern::ANY,
            }
        }
        self.min_len = self.min_len.min(key.len());
    }

    /// Starts a pattern from a single example key.
    #[must_use]
    pub fn of_key(key: &[u8]) -> Self {
        KeyPattern::fixed(key.iter().map(|&b| BytePattern::literal(b)).collect())
    }

    /// Maximal runs of fully constant bytes, as `(start, len)` pairs — the
    /// "constant words" of Section 3.2.1. Only positions below `min_len`
    /// count: bytes that may be absent cannot be skipped unconditionally.
    #[must_use]
    pub fn constant_runs(&self) -> Vec<(usize, usize)> {
        let mut runs = Vec::new();
        let mut i = 0;
        while i < self.min_len {
            if self.bytes[i].is_const() {
                let start = i;
                while i < self.min_len && self.bytes[i].is_const() {
                    i += 1;
                }
                runs.push((start, i - start));
            } else {
                i += 1;
            }
        }
        runs
    }
}

impl fmt::Display for KeyPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, b) in self.bytes.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            if i == self.min_len {
                write!(f, "| ")?;
            }
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_matches_only_itself() {
        let p = BytePattern::literal(b'x');
        assert!(p.matches(b'x'));
        assert!(!p.matches(b'y'));
        assert!(p.is_const());
        assert_eq!(p.cardinality(), 1);
        assert_eq!(p.possible_bytes().collect::<Vec<_>>(), vec![b'x']);
    }

    #[test]
    fn any_matches_everything() {
        assert_eq!(BytePattern::ANY.cardinality(), 256);
        for b in 0..=255u8 {
            assert!(BytePattern::ANY.matches(b));
        }
    }

    #[test]
    fn digits_share_the_upper_nibble() {
        let p = BytePattern::from_bytes(b"0123456789".iter().copied()).unwrap();
        assert_eq!(p.const_mask(), 0xF0);
        assert_eq!(p.const_bits(), 0x30);
        // The pattern over-approximates: 0x3A..0x3F also match. This is the
        // deliberate compromise of Section 3.1 (the expression must accept
        // keys outside the example set).
        assert_eq!(p.cardinality(), 16);
        assert!(p.matches(b';'));
    }

    #[test]
    fn upper_and_lower_letters_share_one_pair() {
        // Example 3.5: mixing cases leaves only the leading 01 pair constant.
        let p = BytePattern::from_bytes([b'J', b'a']).unwrap();
        assert_eq!(p.const_mask() & 0xC0, 0xC0);
        assert_eq!(p.const_bits() & 0xC0, 0x40);
        assert!(p.const_mask() < 0xFF);
    }

    #[test]
    fn join_is_monotone_in_cardinality() {
        let digit = BytePattern::from_bytes(b"09".iter().copied()).unwrap();
        let joined = digit.join_byte(b'a');
        assert!(joined.cardinality() >= digit.cardinality());
        assert!(joined.matches(b'a'));
        assert!(joined.matches(b'0'));
    }

    #[test]
    fn quads_round_trip() {
        for mask_pairs in 0..16u8 {
            // Build a pattern with an arbitrary selection of constant pairs.
            let mut quads = [Quad::Top; 4];
            for (i, q) in quads.iter_mut().enumerate() {
                if mask_pairs & (1 << i) != 0 {
                    *q = Quad::new((i as u8) & 0b11);
                }
            }
            let p = BytePattern::from_quads(quads);
            assert_eq!(p.quads(), quads);
        }
    }

    #[test]
    fn key_pattern_joins_examples() {
        let mut p = KeyPattern::of_key(b"000.000.000.000");
        p.join_key(b"555.555.555.555");
        assert_eq!(p.max_len(), 15);
        assert!(p.is_fixed_len());
        assert!(p.matches(b"123.456.789.012"));
        assert!(!p.matches(b"123.456.789.01"));
        // Dots are constant.
        assert!(p.bytes()[3].is_const());
        assert!(p.bytes()[7].is_const());
        assert!(p.bytes()[11].is_const());
        // Digits are not.
        assert!(!p.bytes()[0].is_const());
    }

    #[test]
    fn variable_length_join_marks_missing_bytes_top() {
        // IATA (3 letters) joined with ICAO (4 letters), Example 3.4.
        let mut p = KeyPattern::of_key(b"JFK");
        p.join_key(b"LAX");
        p.join_key(b"RJTT");
        assert_eq!(p.min_len(), 3);
        assert_eq!(p.max_len(), 4);
        assert!(!p.is_fixed_len());
        // Keys built from byte values the examples exercised.
        assert!(p.matches(b"KAX"));
        assert!(p.matches(b"JFKT"));
        assert!(!p.matches(b"TOOLONG"));
    }

    #[test]
    fn constant_runs_found() {
        let mut p = KeyPattern::of_key(b"https://x.com/000");
        p.join_key(b"https://x.com/999");
        let runs = p.constant_runs();
        assert_eq!(runs, vec![(0, 14)]);
    }

    #[test]
    fn variable_bits_of_ssn_fit_a_pext_bijection() {
        // SSN digits: 9 digits x 4 variable bits = 36 relevant bits <= 64.
        let mut p = KeyPattern::of_key(b"000-00-0000");
        p.join_key(b"555-55-5555");
        assert_eq!(p.variable_bits(), 9 * 4);
    }
}
