//! The quad-semilattice of Definition 3.2.
//!
//! SEPE identifies the format of a set of keys by joining the keys, bit pair
//! by bit pair, in a semilattice whose elements are the four two-bit values
//! (`00`, `01`, `10`, `11`) plus a top element `⊤`. Two equal bit pairs join
//! to themselves; two different bit pairs join to `⊤`. A position that joins
//! to a constant across every example key is a *constant bit pair* and can be
//! discarded by the synthesized hash function.
//!
//! The paper calls the two-bit values "quads" (there are four of them), and
//! groups bits in pairs because pairs are the coarsest granularity that still
//! captures the constant bits shared by ASCII digits (four constant bits,
//! `0011`), upper-case letters and lower-case letters (two constant bits,
//! `01`). See Example 3.5 of the paper.

use std::fmt;

/// An element of the quad-semilattice: a constant two-bit value or `⊤`.
///
/// # Examples
///
/// ```
/// use sepe_core::lattice::Quad;
///
/// let a = Quad::new(0b01);
/// let b = Quad::new(0b01);
/// assert_eq!(a.join(b), Quad::new(0b01));
/// assert_eq!(a.join(Quad::new(0b10)), Quad::Top);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Quad {
    /// A constant bit pair; the payload is one of `0b00..=0b11`.
    Const(u8),
    /// The top element: the bit pair varies across the example keys.
    #[default]
    Top,
}

impl Quad {
    /// Creates a constant quad from a two-bit value.
    ///
    /// # Panics
    ///
    /// Panics if `bits` does not fit in two bits.
    #[must_use]
    pub fn new(bits: u8) -> Self {
        assert!(
            bits <= 0b11,
            "quad value {bits:#04b} does not fit in two bits"
        );
        Quad::Const(bits)
    }

    /// The least upper bound of two quads (the `∨` of Definition 3.2).
    ///
    /// Equal constants join to themselves; anything else joins to [`Quad::Top`].
    #[must_use]
    pub fn join(self, other: Quad) -> Quad {
        match (self, other) {
            (Quad::Const(a), Quad::Const(b)) if a == b => Quad::Const(a),
            _ => Quad::Top,
        }
    }

    /// Whether this quad is a constant bit pair.
    #[must_use]
    pub fn is_const(self) -> bool {
        matches!(self, Quad::Const(_))
    }

    /// Whether this quad is the top element.
    #[must_use]
    pub fn is_top(self) -> bool {
        matches!(self, Quad::Top)
    }

    /// The partial order induced by the join: `a ≤ b` iff `a ∨ b = b`.
    #[must_use]
    pub fn le(self, other: Quad) -> bool {
        self.join(other) == other
    }
}

impl fmt::Display for Quad {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Quad::Const(v) => write!(f, "{}{}", (v >> 1) & 1, v & 1),
            Quad::Top => write!(f, "⊤⊤"),
        }
    }
}

/// Decomposes a byte into its four bit pairs, most significant pair first.
///
/// `quads_of_byte(0x4A)` (ASCII `'J'`, `0b0100_1010`) yields
/// `[01, 00, 10, 10]`.
///
/// # Examples
///
/// ```
/// use sepe_core::lattice::{quads_of_byte, Quad};
///
/// assert_eq!(
///     quads_of_byte(b'J'),
///     [Quad::new(0b01), Quad::new(0b00), Quad::new(0b10), Quad::new(0b10)]
/// );
/// ```
#[must_use]
pub fn quads_of_byte(byte: u8) -> [Quad; 4] {
    [
        Quad::Const((byte >> 6) & 0b11),
        Quad::Const((byte >> 4) & 0b11),
        Quad::Const((byte >> 2) & 0b11),
        Quad::Const(byte & 0b11),
    ]
}

/// Joins the quad decompositions of two bytes pairwise.
#[must_use]
pub fn join_bytes(quads: [Quad; 4], byte: u8) -> [Quad; 4] {
    let other = quads_of_byte(byte);
    [
        quads[0].join(other[0]),
        quads[1].join(other[1]),
        quads[2].join(other[2]),
        quads[3].join(other[3]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_quads() -> Vec<Quad> {
        vec![
            Quad::new(0b00),
            Quad::new(0b01),
            Quad::new(0b10),
            Quad::new(0b11),
            Quad::Top,
        ]
    }

    #[test]
    fn join_of_equal_constants_is_identity() {
        for v in 0..4u8 {
            assert_eq!(Quad::new(v).join(Quad::new(v)), Quad::new(v));
        }
    }

    #[test]
    fn join_of_distinct_constants_is_top() {
        for a in 0..4u8 {
            for b in 0..4u8 {
                if a != b {
                    assert_eq!(Quad::new(a).join(Quad::new(b)), Quad::Top);
                }
            }
        }
    }

    #[test]
    fn top_is_absorbing() {
        for q in all_quads() {
            assert_eq!(q.join(Quad::Top), Quad::Top);
            assert_eq!(Quad::Top.join(q), Quad::Top);
        }
    }

    #[test]
    fn join_is_idempotent_commutative_associative() {
        let qs = all_quads();
        for &a in &qs {
            assert_eq!(a.join(a), a, "idempotence");
            for &b in &qs {
                assert_eq!(a.join(b), b.join(a), "commutativity");
                for &c in &qs {
                    assert_eq!(a.join(b).join(c), a.join(b.join(c)), "associativity");
                }
            }
        }
    }

    #[test]
    fn partial_order_matches_theorem_3_3() {
        // b ≤ ⊤ and b ≤ b for any b; distinct constants are incomparable.
        for q in all_quads() {
            assert!(q.le(Quad::Top));
            assert!(q.le(q));
        }
        assert!(!Quad::new(0b01).le(Quad::new(0b10)));
        assert!(!Quad::new(0b10).le(Quad::new(0b01)));
        assert!(!Quad::Top.le(Quad::new(0b00)));
    }

    #[test]
    fn byte_decomposition_round_trips() {
        for byte in 0..=255u8 {
            let qs = quads_of_byte(byte);
            let mut rebuilt = 0u8;
            for (i, q) in qs.iter().enumerate() {
                match q {
                    Quad::Const(v) => rebuilt |= v << (6 - 2 * i),
                    Quad::Top => panic!("decomposition of a byte has no top"),
                }
            }
            assert_eq!(rebuilt, byte);
        }
    }

    #[test]
    fn iata_example_from_figure_6() {
        // JFK ∨ LaX ∨ GRu: first byte keeps only its top bit pair constant
        // (01, the letter prefix), everything else varies except where the
        // three example bytes agree.
        let keys: [&[u8]; 3] = [b"JFK", b"LaX", b"GRu"];
        let mut joined = [
            quads_of_byte(keys[0][0]),
            quads_of_byte(keys[0][1]),
            quads_of_byte(keys[0][2]),
        ];
        for key in &keys[1..] {
            for (i, q) in joined.iter_mut().enumerate() {
                *q = join_bytes(*q, key[i]);
            }
        }
        // Figure 6: 0100 ⊤⊤ 01 ⊤⊤ ⊤ 01 ⊤ ⊤⊤ ⊤⊤.
        assert_eq!(joined[0][0], Quad::new(0b01));
        assert_eq!(joined[0][1], Quad::new(0b00));
        assert_eq!(joined[0][2], Quad::Top);
        assert_eq!(joined[0][3], Quad::Top);
        assert_eq!(joined[1][0], Quad::new(0b01));
        assert_eq!(joined[2][0], Quad::new(0b01));
    }
}
