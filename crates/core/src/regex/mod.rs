//! The regular-expression front end of SEPE.
//!
//! Users can drive synthesis with a regular expression describing their key
//! format instead of example keys (Figure 5 of the paper,
//! `make_hash_from_regex.sh "(([0-9]{3})\.){3}[0-9]{3}"`). The supported
//! subset is the one the paper's key formats need: literals, escapes,
//! character classes, `\d`/`\w`-style shorthands, `.`, grouping, bounded
//! repetition `{n}` / `{n,m}`, and a trailing `?` for optional suffix bytes.
//! Unbounded repetition (`*`, `+`) and alternation (`|`) are rejected with a
//! descriptive error: they do not pin byte positions, so there is nothing to
//! specialize on.
//!
//! A parsed expression *expands* into one [`ByteClass`] per byte position
//! ([`Regex::expand`]), which converts into the [`KeyPattern`] consumed by
//! the synthesizer. The inverse direction — rendering a pattern back into a
//! regex string — lives in [`render`] and backs the `keybuilder` tool.

mod parser;
pub mod render;

pub use parser::{parse, ParseRegexError};

use crate::pattern::{BytePattern, KeyPattern};
use std::fmt;

/// Upper bound on the expanded length of a regular expression, guarding
/// against `[0-9]{999999999}`-style blowups.
pub const MAX_EXPANDED_LEN: usize = 1 << 20;

/// A set of byte values, the exact (non-lattice) description of one byte
/// position of a key format.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ByteClass {
    bits: [u64; 4],
}

impl ByteClass {
    /// The empty class.
    pub const EMPTY: ByteClass = ByteClass { bits: [0; 4] };

    /// The class containing every byte.
    pub const ANY: ByteClass = ByteClass {
        bits: [u64::MAX; 4],
    };

    /// The class containing a single byte.
    #[must_use]
    pub fn literal(byte: u8) -> Self {
        let mut c = ByteClass::EMPTY;
        c.insert(byte);
        c
    }

    /// The class containing an inclusive range of bytes.
    #[must_use]
    pub fn range(lo: u8, hi: u8) -> Self {
        let mut c = ByteClass::EMPTY;
        for b in lo..=hi {
            c.insert(b);
        }
        c
    }

    /// Inserts a byte into the class.
    pub fn insert(&mut self, byte: u8) {
        self.bits[(byte >> 6) as usize] |= 1u64 << (byte & 63);
    }

    /// Whether the class contains `byte`.
    #[must_use]
    pub fn contains(&self, byte: u8) -> bool {
        self.bits[(byte >> 6) as usize] >> (byte & 63) & 1 == 1
    }

    /// The union of two classes.
    #[must_use]
    pub fn union(&self, other: &ByteClass) -> ByteClass {
        let mut bits = self.bits;
        for (b, o) in bits.iter_mut().zip(other.bits.iter()) {
            *b |= o;
        }
        ByteClass { bits }
    }

    /// The complement of the class (every byte not in it) — the semantics
    /// of a negated class `[^…]`.
    #[must_use]
    pub fn complement(&self) -> ByteClass {
        let mut bits = self.bits;
        for b in &mut bits {
            *b = !*b;
        }
        ByteClass { bits }
    }

    /// Number of bytes in the class.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the class is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits == [0; 4]
    }

    /// Iterates over the members of the class in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0u16..=255)
            .map(|b| b as u8)
            .filter(move |&b| self.contains(b))
    }

    /// The single member, if the class is a singleton.
    #[must_use]
    pub fn as_literal(&self) -> Option<u8> {
        if self.len() == 1 {
            self.iter().next()
        } else {
            None
        }
    }

    /// Joins every member in the quad-semilattice, giving the (possibly
    /// over-approximating) [`BytePattern`] of this position.
    ///
    /// Returns [`BytePattern::ANY`] for the empty class, which never arises
    /// from a successfully parsed expression.
    #[must_use]
    pub fn to_byte_pattern(&self) -> BytePattern {
        BytePattern::from_bytes(self.iter()).unwrap_or(BytePattern::ANY)
    }

    /// The members of the class as maximal inclusive ranges.
    #[must_use]
    pub fn ranges(&self) -> Vec<(u8, u8)> {
        let mut out = Vec::new();
        let mut cur: Option<(u8, u8)> = None;
        for b in self.iter() {
            match cur {
                Some((lo, hi)) if hi + 1 == b => cur = Some((lo, b)),
                Some(done) => {
                    out.push(done);
                    cur = Some((b, b));
                }
                None => cur = Some((b, b)),
            }
        }
        if let Some(done) = cur {
            out.push(done);
        }
        out
    }
}

impl fmt::Debug for ByteClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ByteClass(")?;
        for (i, (lo, hi)) in self.ranges().into_iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            if lo == hi {
                write!(f, "{lo:#04x}")?;
            } else {
                write!(f, "{lo:#04x}-{hi:#04x}")?;
            }
        }
        write!(f, ")")
    }
}

/// A parsed regular expression over the supported fixed-shape subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Regex {
    /// The empty expression.
    Empty,
    /// One byte drawn from a class.
    Class(ByteClass),
    /// Concatenation of sub-expressions.
    Concat(Vec<Regex>),
    /// Bounded repetition: between `min` and `max` copies of the body.
    /// `{n}` parses as `min == max == n`; a trailing `?` as `{0,1}`.
    Repeat {
        /// The repeated sub-expression.
        body: Box<Regex>,
        /// Minimum number of copies.
        min: usize,
        /// Maximum number of copies.
        max: usize,
    },
}

/// Error produced when an expression expands past [`MAX_EXPANDED_LEN`] bytes
/// or has an ambiguous shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExpandError {
    /// The expanded byte sequence would exceed [`MAX_EXPANDED_LEN`].
    TooLong,
    /// Optional parts occur before mandatory parts, so byte positions are
    /// not pinned (e.g. `a?b`). SEPE only supports optional *suffixes*.
    OptionalPrefix,
}

impl fmt::Display for ExpandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpandError::TooLong => {
                write!(f, "expanded key format exceeds {MAX_EXPANDED_LEN} bytes")
            }
            ExpandError::OptionalPrefix => write!(
                f,
                "optional parts are only supported at the end of the key format"
            ),
        }
    }
}

impl std::error::Error for ExpandError {}

/// The expansion of a regex: one class per byte position plus the minimum
/// key length (positions `min_len..` are optional).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expansion {
    /// One byte class per position, `max_len` entries.
    pub classes: Vec<ByteClass>,
    /// Minimum key length in bytes.
    pub min_len: usize,
}

impl Regex {
    /// Expands the expression into per-position byte classes.
    ///
    /// # Errors
    ///
    /// Returns [`ExpandError::TooLong`] if the expansion exceeds
    /// [`MAX_EXPANDED_LEN`] and [`ExpandError::OptionalPrefix`] if an
    /// optional part is followed by a mandatory one.
    pub fn expand(&self) -> Result<Expansion, ExpandError> {
        let mut classes = Vec::new();
        let mut min_len = 0usize;
        self.expand_into(&mut classes, &mut min_len, true)?;
        Ok(Expansion { classes, min_len })
    }

    fn expand_into(
        &self,
        classes: &mut Vec<ByteClass>,
        min_len: &mut usize,
        mandatory: bool,
    ) -> Result<(), ExpandError> {
        match self {
            Regex::Empty => Ok(()),
            Regex::Class(c) => {
                if classes.len() >= MAX_EXPANDED_LEN {
                    return Err(ExpandError::TooLong);
                }
                if mandatory {
                    if *min_len != classes.len() {
                        return Err(ExpandError::OptionalPrefix);
                    }
                    *min_len += 1;
                }
                classes.push(*c);
                Ok(())
            }
            Regex::Concat(parts) => {
                for p in parts {
                    p.expand_into(classes, min_len, mandatory)?;
                }
                Ok(())
            }
            Regex::Repeat { body, min, max } => {
                for _ in 0..*min {
                    body.expand_into(classes, min_len, mandatory)?;
                }
                for _ in *min..*max {
                    body.expand_into(classes, min_len, false)?;
                }
                Ok(())
            }
        }
    }

    /// Parses and expands `source`, producing the [`KeyPattern`] that drives
    /// synthesis.
    ///
    /// # Errors
    ///
    /// Returns a parse error for unsupported syntax, or an expansion error
    /// for oversized or ambiguous shapes.
    ///
    /// # Examples
    ///
    /// ```
    /// use sepe_core::regex::Regex;
    ///
    /// let pattern = Regex::compile(r"(([0-9]{3})\.){3}[0-9]{3}")?;
    /// assert_eq!(pattern.max_len(), 15);
    /// assert!(pattern.matches(b"192.168.001.001"));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn compile(source: &str) -> Result<KeyPattern, Box<dyn std::error::Error>> {
        let regex = parse(source)?;
        let expansion = regex.expand()?;
        Ok(expansion.to_key_pattern())
    }
}

impl Expansion {
    /// Converts the exact per-position classes into the lattice pattern the
    /// synthesizer consumes.
    #[must_use]
    pub fn to_key_pattern(&self) -> KeyPattern {
        let bytes: Vec<BytePattern> = self
            .classes
            .iter()
            .map(ByteClass::to_byte_pattern)
            .collect();
        KeyPattern::with_min_len(bytes, self.min_len)
    }

    /// Whether `key` is a member of the expanded language (exact check, not
    /// the lattice over-approximation).
    #[must_use]
    pub fn matches(&self, key: &[u8]) -> bool {
        if key.len() < self.min_len || key.len() > self.classes.len() {
            return false;
        }
        key.iter().zip(&self.classes).all(|(&b, c)| c.contains(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_class_basics() {
        let c = ByteClass::range(b'0', b'9');
        assert_eq!(c.len(), 10);
        assert!(c.contains(b'5'));
        assert!(!c.contains(b'a'));
        assert_eq!(c.ranges(), vec![(b'0', b'9')]);
        assert_eq!(ByteClass::literal(b'x').as_literal(), Some(b'x'));
        assert_eq!(c.as_literal(), None);
    }

    #[test]
    fn union_and_ranges() {
        let c = ByteClass::range(b'a', b'f').union(&ByteClass::range(b'0', b'9'));
        assert_eq!(c.len(), 16);
        assert_eq!(c.ranges(), vec![(b'0', b'9'), (b'a', b'f')]);
    }

    #[test]
    fn digit_class_patterns_match_the_paper() {
        let p = ByteClass::range(b'0', b'9').to_byte_pattern();
        assert_eq!(p.const_mask(), 0xF0);
        assert_eq!(p.const_bits(), 0x30);
    }

    #[test]
    fn expansion_of_repeat() {
        let r = Regex::Repeat {
            body: Box::new(Regex::Class(ByteClass::range(b'0', b'9'))),
            min: 3,
            max: 3,
        };
        let e = r.expand().unwrap();
        assert_eq!(e.classes.len(), 3);
        assert_eq!(e.min_len, 3);
        assert!(e.matches(b"123"));
        assert!(!e.matches(b"12"));
        assert!(!e.matches(b"12a"));
    }

    #[test]
    fn optional_suffix_is_allowed() {
        let r = Regex::Concat(vec![
            Regex::Class(ByteClass::literal(b'a')),
            Regex::Repeat {
                body: Box::new(Regex::Class(ByteClass::literal(b'b'))),
                min: 0,
                max: 2,
            },
        ]);
        let e = r.expand().unwrap();
        assert_eq!(e.min_len, 1);
        assert_eq!(e.classes.len(), 3);
        assert!(e.matches(b"a"));
        assert!(e.matches(b"ab"));
        assert!(e.matches(b"abb"));
        assert!(!e.matches(b"abbb"));
    }

    #[test]
    fn optional_prefix_is_rejected() {
        let r = Regex::Concat(vec![
            Regex::Repeat {
                body: Box::new(Regex::Class(ByteClass::literal(b'a'))),
                min: 0,
                max: 1,
            },
            Regex::Class(ByteClass::literal(b'b')),
        ]);
        assert_eq!(r.expand().unwrap_err(), ExpandError::OptionalPrefix);
    }

    #[test]
    fn oversized_expansion_is_rejected() {
        let r = Regex::Repeat {
            body: Box::new(Regex::Class(ByteClass::ANY)),
            min: MAX_EXPANDED_LEN + 1,
            max: MAX_EXPANDED_LEN + 1,
        };
        assert_eq!(r.expand().unwrap_err(), ExpandError::TooLong);
    }
}
