//! Rendering [`KeyPattern`]s back into regular-expression strings.
//!
//! The `keybuilder` tool of Figure 5 converts example keys into a regular
//! expression. Inference produces a [`KeyPattern`] (a lattice element per
//! byte); this module pretty-prints that pattern as a regex that *joins back
//! to the same lattice element* — the round-trip property
//! `compile(render(p)) == p` is guaranteed and property-tested.
//!
//! Each byte position renders as a canonical representative of its lattice
//! element: fully constant bytes render as escaped literals, the digit
//! element (`const 0011` upper nibble) renders as `[0-9]`, the letter
//! element (`const 01` top pair) as `[A-Za-z]`, anything else as an exact
//! character class over the bytes compatible with the constant bits.

use crate::pattern::{BytePattern, KeyPattern};

/// Renders `pattern` as a regular expression accepted by
/// [`crate::regex::parse`].
///
/// # Examples
///
/// ```
/// use sepe_core::infer::infer_pattern;
/// use sepe_core::regex::render::render;
///
/// let pattern = infer_pattern([&b"000-00-0000"[..], b"555-55-5555"]).unwrap();
/// assert_eq!(render(&pattern), r"[0-9]{3}-[0-9]{2}-[0-9]{4}");
/// ```
#[must_use]
pub fn render(pattern: &KeyPattern) -> String {
    let mandatory = &pattern.bytes()[..pattern.min_len()];
    let optional = &pattern.bytes()[pattern.min_len()..];
    let mut out = render_run_length(mandatory);
    // Optional suffix: nested `( .. )?` groups so that any prefix length is
    // accepted, matching the lattice treatment of missing bytes.
    for b in optional {
        out.push('(');
        out.push_str(&render_byte(*b));
    }
    for _ in optional {
        out.push_str(")?");
    }
    out
}

fn render_run_length(bytes: &[BytePattern]) -> String {
    let mut out = String::new();
    let mut i = 0;
    while i < bytes.len() {
        let mut j = i + 1;
        while j < bytes.len() && bytes[j] == bytes[i] {
            j += 1;
        }
        let run = j - i;
        let rendered = render_byte(bytes[i]);
        let is_class = rendered.len() > 1 || rendered.starts_with('[');
        // `[0-9]{3}` reads better than `[0-9][0-9][0-9]`; short literal runs
        // like "ab" stay verbatim.
        if run >= 2 && (is_class || run >= 4) {
            out.push_str(&rendered);
            out.push_str(&format!("{{{run}}}"));
        } else {
            for _ in 0..run {
                out.push_str(&rendered);
            }
        }
        i = j;
    }
    out
}

fn render_byte(b: BytePattern) -> String {
    if b.is_any() {
        return ".".to_owned();
    }
    if b.is_const() {
        return escape_literal(b.const_bits());
    }
    // Canonical friendly classes for the two lattice elements ASCII text
    // produces (Example 3.5 of the paper).
    if b.const_mask() == 0xF0 && b.const_bits() == 0x30 {
        return "[0-9]".to_owned();
    }
    if b.const_mask() == 0xC0 && b.const_bits() == 0x40 {
        return "[A-Za-z]".to_owned();
    }
    // Exact class over the coset of bytes compatible with the constant bits.
    let mut out = String::from("[");
    let mut cur: Option<(u8, u8)> = None;
    let flush = |range: (u8, u8), out: &mut String| {
        let (lo, hi) = range;
        out.push_str(&escape_in_class(lo));
        if hi > lo {
            if hi > lo + 1 {
                out.push('-');
            }
            out.push_str(&escape_in_class(hi));
        }
    };
    for byte in b.possible_bytes() {
        match cur {
            Some((lo, hi)) if hi.checked_add(1) == Some(byte) => cur = Some((lo, byte)),
            Some(done) => {
                flush(done, &mut out);
                cur = Some((byte, byte));
            }
            None => cur = Some((byte, byte)),
        }
    }
    if let Some(done) = cur {
        flush(done, &mut out);
    }
    out.push(']');
    out
}

fn escape_literal(b: u8) -> String {
    match b {
        b'.' | b'(' | b')' | b'[' | b']' | b'{' | b'}' | b'*' | b'+' | b'?' | b'|' | b'\\'
        | b'^' | b'$' => format!("\\{}", b as char),
        b'\n' => "\\n".to_owned(),
        b'\t' => "\\t".to_owned(),
        b'\r' => "\\r".to_owned(),
        0x20..=0x7E => (b as char).to_string(),
        _ => format!("\\x{b:02x}"),
    }
}

fn escape_in_class(b: u8) -> String {
    match b {
        b']' | b'\\' | b'-' | b'^' => format!("\\{}", b as char),
        b'\n' => "\\n".to_owned(),
        b'\t' => "\\t".to_owned(),
        b'\r' => "\\r".to_owned(),
        0x20..=0x7E => (b as char).to_string(),
        _ => format!("\\x{b:02x}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::infer_pattern;
    use crate::regex::{parse, Regex};

    fn round_trips(p: &KeyPattern) {
        let rendered = render(p);
        let reparsed = Regex::compile(&rendered)
            .unwrap_or_else(|e| panic!("render produced unparseable {rendered:?}: {e}"));
        assert_eq!(&reparsed, p, "round-trip failed for {rendered:?}");
    }

    #[test]
    fn ssn_pattern_renders_like_the_paper() {
        let p = infer_pattern([&b"000-00-0000"[..], b"555-55-5555"]).unwrap();
        assert_eq!(render(&p), r"[0-9]{3}-[0-9]{2}-[0-9]{4}");
        round_trips(&p);
    }

    #[test]
    fn ipv4_pattern_renders_like_the_paper() {
        let p = infer_pattern([&b"000.000.000.000"[..], b"555.555.555.555"]).unwrap();
        assert_eq!(render(&p), r"[0-9]{3}\.[0-9]{3}\.[0-9]{3}\.[0-9]{3}");
        round_trips(&p);
    }

    #[test]
    fn constant_prefix_renders_as_literal() {
        let p = infer_pattern([&b"https://x.com/a"[..], b"https://x.com/b"]).unwrap();
        let r = render(&p);
        assert!(r.starts_with("https://x"), "got {r:?}");
        round_trips(&p);
    }

    #[test]
    fn letters_render_as_friendly_class() {
        let p = infer_pattern([&b"JFK"[..], b"LaX", b"GRu"]).unwrap();
        let r = render(&p);
        assert!(r.contains("[A-Za-z]"), "got {r:?}");
        round_trips(&p);
    }

    #[test]
    fn variable_length_renders_optional_suffix() {
        let p = infer_pattern([&b"JFK"[..], b"RJTT"]).unwrap();
        let r = render(&p);
        assert!(r.ends_with(")?"), "got {r:?}");
        round_trips(&p);
    }

    #[test]
    fn fully_variable_byte_renders_as_dot() {
        let p = infer_pattern([&[0x00u8][..], &[0xFF], &[0x55], &[0xAA]]).unwrap();
        assert_eq!(render(&p), ".");
        round_trips(&p);
    }

    #[test]
    fn metacharacters_escape() {
        let p = KeyPattern::of_key(b"a.b(c)*");
        let r = render(&p);
        assert_eq!(r, r"a\.b\(c\)\*");
        round_trips(&p);
    }

    #[test]
    fn exact_class_round_trips() {
        // Lattice element with only the low pair constant (mask 0x03).
        let p = KeyPattern::fixed(vec![
            crate::pattern::BytePattern::from_bytes([0x00, 0xFC]).unwrap()
        ]);
        round_trips(&p);
    }

    #[test]
    fn long_literal_runs_use_repetition() {
        let p = KeyPattern::of_key(b"aaaaaaaa");
        assert_eq!(render(&p), "a{8}");
        round_trips(&p);
    }

    #[test]
    fn parses_back_with_parse_entry_point() {
        let p = infer_pattern([&b"00:00"[..], b"ff:ff", b"5a:a5"]).unwrap();
        let r = render(&p);
        assert!(parse(&r).is_ok());
        round_trips(&p);
    }
}
