//! Recursive-descent parser for the SEPE regular-expression subset.

use super::{ByteClass, Regex};
use std::fmt;

/// Error produced while parsing a regular expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegexError {
    /// Byte offset in the source where the error was detected.
    pub position: usize,
    /// What went wrong.
    pub kind: ParseRegexErrorKind,
}

/// The kinds of [`ParseRegexError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseRegexErrorKind {
    /// The source ended in the middle of a construct.
    UnexpectedEnd,
    /// A character that cannot start or continue a construct here.
    Unexpected(char),
    /// `*` or `+`: unbounded repetition does not pin byte positions.
    UnboundedRepetition(char),
    /// `|`: alternation produces formats without fixed byte positions.
    Alternation,
    /// A repetition like `{3,1}` with min > max, or `{0}`.
    BadRepetition,
    /// An empty character class `[]`.
    EmptyClass,
    /// A class range like `[9-0]` with the bounds reversed.
    BadClassRange(u8, u8),
    /// A repetition operator with nothing to repeat (e.g. `{3}` at start).
    NothingToRepeat,
    /// A non-ASCII character; SEPE works on byte formats.
    NonAscii(char),
}

impl fmt::Display for ParseRegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex parse error at offset {}: ", self.position)?;
        match &self.kind {
            ParseRegexErrorKind::UnexpectedEnd => write!(f, "unexpected end of pattern"),
            ParseRegexErrorKind::Unexpected(c) => write!(f, "unexpected character {c:?}"),
            ParseRegexErrorKind::UnboundedRepetition(c) => write!(
                f,
                "unbounded repetition {c:?} is not supported; specialized hashes need fixed byte positions, use {{n}} instead"
            ),
            ParseRegexErrorKind::Alternation => write!(
                f,
                "alternation '|' is not supported; synthesize one hash per alternative instead"
            ),
            ParseRegexErrorKind::BadRepetition => write!(f, "invalid repetition bounds"),
            ParseRegexErrorKind::EmptyClass => write!(f, "empty character class"),
            ParseRegexErrorKind::BadClassRange(lo, hi) => write!(
                f,
                "invalid class range {}-{} (bounds reversed)",
                *lo as char, *hi as char
            ),
            ParseRegexErrorKind::NothingToRepeat => write!(f, "repetition with nothing to repeat"),
            ParseRegexErrorKind::NonAscii(c) => {
                write!(f, "non-ASCII character {c:?}; key formats are byte formats")
            }
        }
    }
}

impl std::error::Error for ParseRegexError {}

/// Parses `source` into a [`Regex`].
///
/// # Errors
///
/// Returns [`ParseRegexError`] for syntax outside the supported subset; the
/// message explains why the construct is incompatible with specialization.
///
/// # Examples
///
/// ```
/// use sepe_core::regex::parse;
///
/// let r = parse(r"\d{3}-\d{2}-\d{4}")?; // the paper's SSN format
/// let e = r.expand()?;
/// assert_eq!(e.classes.len(), 11);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn parse(source: &str) -> Result<Regex, ParseRegexError> {
    let mut p = Parser {
        src: source.as_bytes(),
        pos: 0,
    };
    let r = p.parse_concat()?;
    if p.pos != p.src.len() {
        return Err(p.err_here());
    }
    Ok(r)
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn error(&self, kind: ParseRegexErrorKind) -> ParseRegexError {
        ParseRegexError {
            position: self.pos,
            kind,
        }
    }

    fn err_here(&self) -> ParseRegexError {
        match self.peek() {
            Some(b) => self.error(ParseRegexErrorKind::Unexpected(b as char)),
            None => self.error(ParseRegexErrorKind::UnexpectedEnd),
        }
    }

    fn parse_concat(&mut self) -> Result<Regex, ParseRegexError> {
        let mut parts: Vec<Regex> = Vec::new();
        while let Some(b) = self.peek() {
            match b {
                b')' => break,
                b'|' => return Err(self.error(ParseRegexErrorKind::Alternation)),
                b'*' | b'+' => {
                    return Err(self.error(ParseRegexErrorKind::UnboundedRepetition(b as char)))
                }
                b'{' | b'?' => {
                    let Some(last) = parts.pop() else {
                        return Err(self.error(ParseRegexErrorKind::NothingToRepeat));
                    };
                    let (min, max) = self.parse_repetition()?;
                    parts.push(Regex::Repeat {
                        body: Box::new(last),
                        min,
                        max,
                    });
                }
                _ => {
                    let atom = self.parse_atom()?;
                    parts.push(atom);
                }
            }
        }
        Ok(match parts.len() {
            0 => Regex::Empty,
            1 => parts.pop().expect("one part"),
            _ => Regex::Concat(parts),
        })
    }

    fn parse_repetition(&mut self) -> Result<(usize, usize), ParseRegexError> {
        match self.bump() {
            Some(b'?') => Ok((0, 1)),
            Some(b'{') => {
                let min = self.parse_number()?;
                let max = match self.peek() {
                    Some(b',') => {
                        self.pos += 1;
                        self.parse_number()?
                    }
                    _ => min,
                };
                if self.bump() != Some(b'}') {
                    return Err(self.err_here());
                }
                if min > max || max == 0 {
                    return Err(self.error(ParseRegexErrorKind::BadRepetition));
                }
                Ok((min, max))
            }
            _ => Err(self.err_here()),
        }
    }

    fn parse_number(&mut self) -> Result<usize, ParseRegexError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err_here());
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .expect("digits are UTF-8")
            .parse()
            .map_err(|_| self.error(ParseRegexErrorKind::BadRepetition))
    }

    fn parse_atom(&mut self) -> Result<Regex, ParseRegexError> {
        match self
            .bump()
            .ok_or_else(|| self.error(ParseRegexErrorKind::UnexpectedEnd))?
        {
            b'(' => {
                let inner = self.parse_concat()?;
                if self.bump() != Some(b')') {
                    return Err(self.err_here());
                }
                Ok(inner)
            }
            b'[' => self.parse_class().map(Regex::Class),
            b'.' => Ok(Regex::Class(ByteClass::ANY)),
            b'\\' => self.parse_escape().map(Regex::Class),
            b if b.is_ascii() => Ok(Regex::Class(ByteClass::literal(b))),
            b => Err(self.error(ParseRegexErrorKind::NonAscii(b as char))),
        }
    }

    fn parse_escape(&mut self) -> Result<ByteClass, ParseRegexError> {
        match self
            .bump()
            .ok_or_else(|| self.error(ParseRegexErrorKind::UnexpectedEnd))?
        {
            b'd' => Ok(ByteClass::range(b'0', b'9')),
            b'w' => Ok(ByteClass::range(b'a', b'z')
                .union(&ByteClass::range(b'A', b'Z'))
                .union(&ByteClass::range(b'0', b'9'))
                .union(&ByteClass::literal(b'_'))),
            b's' => {
                let mut c = ByteClass::literal(b' ');
                for ws in [b'\t', b'\n', b'\r', 0x0B, 0x0C] {
                    c.insert(ws);
                }
                Ok(c)
            }
            b'n' => Ok(ByteClass::literal(b'\n')),
            b't' => Ok(ByteClass::literal(b'\t')),
            b'r' => Ok(ByteClass::literal(b'\r')),
            b'0' => Ok(ByteClass::literal(0)),
            b'x' => {
                let hi = self.parse_hex_digit()?;
                let lo = self.parse_hex_digit()?;
                Ok(ByteClass::literal(hi * 16 + lo))
            }
            // Any punctuation escape stands for itself: \. \- \\ \[ etc.
            b if b.is_ascii() && !b.is_ascii_alphanumeric() => Ok(ByteClass::literal(b)),
            b if b.is_ascii() => Err(self.error(ParseRegexErrorKind::Unexpected(b as char))),
            b => Err(self.error(ParseRegexErrorKind::NonAscii(b as char))),
        }
    }

    fn parse_hex_digit(&mut self) -> Result<u8, ParseRegexError> {
        match self.bump() {
            Some(b @ b'0'..=b'9') => Ok(b - b'0'),
            Some(b @ b'a'..=b'f') => Ok(b - b'a' + 10),
            Some(b @ b'A'..=b'F') => Ok(b - b'A' + 10),
            _ => Err(self.err_here()),
        }
    }

    /// Parses one class member: a literal byte or an escape (which may
    /// denote a multi-byte shorthand like `\d`).
    fn parse_class_member(&mut self) -> Result<ByteClass, ParseRegexError> {
        match self
            .bump()
            .ok_or_else(|| self.error(ParseRegexErrorKind::UnexpectedEnd))?
        {
            b'\\' => self.parse_escape(),
            b if b.is_ascii() => Ok(ByteClass::literal(b)),
            b => Err(self.error(ParseRegexErrorKind::NonAscii(b as char))),
        }
    }

    fn parse_class(&mut self) -> Result<ByteClass, ParseRegexError> {
        let negated = if self.peek() == Some(b'^') {
            self.pos += 1;
            true
        } else {
            false
        };
        let mut class = ByteClass::EMPTY;
        loop {
            if self.peek() == Some(b']') {
                self.pos += 1;
                break;
            }
            let lo_class = self.parse_class_member()?;
            // A range needs a singleton start, a '-', and a non-']' end;
            // otherwise '-' is a literal member ([a-] style).
            let starts_range = lo_class.as_literal().is_some()
                && self.peek() == Some(b'-')
                && self.src.get(self.pos + 1) != Some(&b']')
                && self.src.get(self.pos + 1).is_some();
            if starts_range {
                self.pos += 1; // consume '-'
                let lo = lo_class.as_literal().expect("singleton checked");
                let hi_class = self.parse_class_member()?;
                let Some(hi) = hi_class.as_literal() else {
                    return Err(self.err_here());
                };
                if lo > hi {
                    return Err(self.error(ParseRegexErrorKind::BadClassRange(lo, hi)));
                }
                class = class.union(&ByteClass::range(lo, hi));
            } else {
                class = class.union(&lo_class);
            }
        }
        if class.is_empty() {
            return Err(self.error(ParseRegexErrorKind::EmptyClass));
        }
        if negated {
            class = class.complement();
            if class.is_empty() {
                return Err(self.error(ParseRegexErrorKind::EmptyClass));
            }
        }
        Ok(class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expand_len(src: &str) -> usize {
        parse(src).unwrap().expand().unwrap().classes.len()
    }

    #[test]
    fn paper_key_formats_parse_to_the_right_lengths() {
        assert_eq!(expand_len(r"\d{3}-\d{2}-\d{4}"), 11); // SSN
        assert_eq!(expand_len(r"\d{3}\.\d{3}\.\d{3}-\d{2}"), 14); // CPF
        assert_eq!(expand_len(r"([0-9a-fA-F]{2}-){5}[0-9a-fA-F]{2}"), 17); // MAC
        assert_eq!(expand_len(r"(([0-9]{3})\.){3}[0-9]{3}"), 15); // IPv4
        assert_eq!(expand_len(r"([0-9a-f]{4}:){7}[0-9a-f]{4}"), 39); // IPv6
        assert_eq!(expand_len(r"[0-9]{100}"), 100); // INTS
    }

    #[test]
    fn ssn_expansion_matches_and_rejects() {
        let e = parse(r"\d{3}-\d{2}-\d{4}").unwrap().expand().unwrap();
        assert!(e.matches(b"123-45-6789"));
        assert!(!e.matches(b"123-45-678"));
        assert!(!e.matches(b"123.45.6789"));
    }

    #[test]
    fn mac_class_includes_both_cases() {
        let e = parse(r"([0-9a-fA-F]{2}-){5}[0-9a-fA-F]{2}")
            .unwrap()
            .expand()
            .unwrap();
        assert!(e.matches(b"0a-1B-2c-3D-4e-5F"));
        assert!(!e.matches(b"0a-1B-2c-3D-4e-5G"));
    }

    #[test]
    fn nested_groups_expand() {
        let e = parse(r"((ab){2}c){3}").unwrap().expand().unwrap();
        assert_eq!(e.classes.len(), 15);
        assert!(e.matches(b"ababcababcababc"));
    }

    #[test]
    fn optional_suffix_parses() {
        let e = parse(r"abc(def)?").unwrap().expand().unwrap();
        assert_eq!(e.min_len, 3);
        assert_eq!(e.classes.len(), 6);
        assert!(e.matches(b"abc"));
        assert!(e.matches(b"abcdef"));
    }

    #[test]
    fn repetition_range_parses() {
        let e = parse(r"a{2,4}").unwrap().expand().unwrap();
        assert_eq!(e.min_len, 2);
        assert_eq!(e.classes.len(), 4);
    }

    #[test]
    fn unsupported_constructs_error_clearly() {
        assert!(matches!(
            parse("a*").unwrap_err().kind,
            ParseRegexErrorKind::UnboundedRepetition('*')
        ));
        assert!(matches!(
            parse("a+").unwrap_err().kind,
            ParseRegexErrorKind::UnboundedRepetition('+')
        ));
        assert!(matches!(
            parse("a|b").unwrap_err().kind,
            ParseRegexErrorKind::Alternation
        ));
        assert!(matches!(
            parse("{3}").unwrap_err().kind,
            ParseRegexErrorKind::NothingToRepeat
        ));
        assert!(matches!(
            parse("[]").unwrap_err().kind,
            ParseRegexErrorKind::EmptyClass
        ));
        assert!(matches!(
            parse("[9-0]").unwrap_err().kind,
            ParseRegexErrorKind::BadClassRange(b'9', b'0')
        ));
        assert!(matches!(
            parse("(ab").unwrap_err().kind,
            ParseRegexErrorKind::UnexpectedEnd
        ));
        assert!(matches!(
            parse("a{0}").unwrap_err().kind,
            ParseRegexErrorKind::BadRepetition
        ));
        assert!(matches!(
            parse("a{3,1}").unwrap_err().kind,
            ParseRegexErrorKind::BadRepetition
        ));
    }

    #[test]
    fn negated_classes_complement() {
        let e = parse(r"[^0-9]").unwrap().expand().unwrap();
        assert_eq!(e.classes[0].len(), 246);
        assert!(!e.matches(b"5"));
        assert!(e.matches(b"a"));
        assert!(e.matches(&[0xFF]));

        // '^' not in first position is a literal member.
        let e = parse(r"[a^]").unwrap().expand().unwrap();
        assert!(e.matches(b"a"));
        assert!(e.matches(b"^"));
        assert!(!e.matches(b"b"));

        // Negating everything is an empty class.
        assert!(matches!(
            parse(r"[^\x00-\xff]").unwrap_err().kind,
            ParseRegexErrorKind::EmptyClass
        ));
    }

    #[test]
    fn negated_class_in_a_format() {
        // "everything but the separator": a CSV-ish field.
        let e = parse(r"[^,]{3},[^,]{3}").unwrap().expand().unwrap();
        assert!(e.matches(b"abc,def"));
        assert!(!e.matches(b"ab,,def"));
    }

    #[test]
    fn hex_escape_and_dash_literal() {
        let e = parse(r"\x41[a-]").unwrap().expand().unwrap();
        assert!(e.matches(b"Aa"));
        assert!(e.matches(b"A-"));
        assert!(!e.matches(b"Ab"));
    }

    #[test]
    fn dot_matches_any_byte() {
        let e = parse(".").unwrap().expand().unwrap();
        assert_eq!(e.classes[0].len(), 256);
    }
}
