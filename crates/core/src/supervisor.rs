//! Supervised background resynthesis: deadlines, retry with backoff, a
//! circuit breaker, and panic isolation.
//!
//! The paper's specialized hashers are cheap to *run* but synthesis is not
//! cheap to *re-run*: re-deriving a plan for a drifted format has high cost
//! variance, and a synthesis pass that hangs, panics or errors must never
//! do so on a serving thread. [`ResynthSupervisor`] therefore turns
//! resynthesis into a supervised background activity:
//!
//! * degradation **enqueues** a [`SynthRequest`] instead of synthesizing
//!   inline;
//! * each attempt runs under `catch_unwind` with a cooperative deadline
//!   ([`CancelToken`], threaded through
//!   [`crate::synth::synthesize_with_cancel`]);
//! * failures retry with capped exponential backoff plus deterministic
//!   jitter ([`BackoffPolicy`]);
//! * after a configured number of consecutive failures a per-tag circuit
//!   breaker opens and the container settles on its guarded fallback;
//! * a completed plan is surfaced as a [`ReadyPlan`] for the container to
//!   apply through its atomic migration-epoch machinery, and results whose
//!   reservoir snapshot generation is stale are discarded at apply time.
//!
//! The supervisor is **polled**: it owns no timer thread. Every transition
//! happens inside [`ResynthSupervisor::pump`], driven by a caller-supplied
//! "now" from an injectable [`Clock`] — with a [`MockClock`] the whole
//! state machine (backoff schedule, deadline expiry, breaker
//! open/half-open/close) replays deterministically, which is what the
//! `sepe-verify --suite supervisor` harness asserts.

use crate::hash::{SynthError, SynthesizedHash};
use crate::pattern::KeyPattern;
use crate::synth::Family;
use crate::Isa;
use sepe_obs::{EventTrace, ObsEvent, TransitionKind};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};

/// Bound on retained transcript events. Far above what any chaos run
/// produces, but a hard ceiling: a supervisor pumped for months cannot
/// grow its transcript without bound. Overflow is counted, not silent
/// (see [`ResynthSupervisor::transcript_dropped`]).
const TRANSCRIPT_CAPACITY: usize = 1 << 16;

/// Bound on retained synthesis-search events ([`ObsEvent::SynthSearch`]).
const SEARCH_TRACE_CAPACITY: usize = 4096;

/// A monotonic millisecond clock the supervisor reads time from.
///
/// Production uses [`SystemClock`]; tests use [`MockClock`] so every
/// deadline and backoff edge is exact.
pub trait Clock: Send + Sync {
    /// Milliseconds since an arbitrary (per-clock) origin. Must be
    /// monotone non-decreasing.
    fn now_ms(&self) -> u64;
}

/// Wall-clock milliseconds measured from the instant the clock was built.
#[derive(Debug)]
pub struct SystemClock {
    origin: std::time::Instant,
}

impl SystemClock {
    /// A clock whose origin is "now".
    #[must_use]
    pub fn new() -> Self {
        SystemClock {
            origin: std::time::Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_millis()).unwrap_or(u64::MAX)
    }
}

/// A hand-cranked clock for deterministic tests: time only moves when the
/// test calls [`MockClock::advance`] or [`MockClock::set`].
#[derive(Debug, Clone, Default)]
pub struct MockClock {
    now: Arc<AtomicU64>,
}

impl MockClock {
    /// A clock starting at zero.
    #[must_use]
    pub fn new() -> Self {
        MockClock::default()
    }

    /// Moves time forward by `ms`.
    pub fn advance(&self, ms: u64) {
        self.now.fetch_add(ms, Ordering::Relaxed);
    }

    /// Jumps time to an absolute value (must not go backwards in tests
    /// that care about monotonicity).
    pub fn set(&self, ms: u64) {
        self.now.store(ms, Ordering::Relaxed);
    }
}

impl Clock for MockClock {
    fn now_ms(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

/// Synthesis was cancelled — the job's deadline expired or the supervisor
/// revoked it. Converted into [`SynthError::Cancelled`] at the API edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthCancelled;

/// How often, in calls, [`CancelToken::check`] consults the clock. The
/// cancelled flag itself is read on every check; only the (potentially
/// syscall-backed) deadline comparison is amortized.
const DEADLINE_CHECK_STRIDE: u64 = 64;

#[derive(Debug)]
struct TokenInner {
    cancelled: AtomicBool,
    /// Absolute deadline in clock milliseconds; `u64::MAX` means none.
    deadline_ms: u64,
    calls: AtomicU64,
}

/// A cooperative, budget-checked cancellation token threaded through the
/// synthesis loops.
///
/// Cancellation has two sources: an explicit [`CancelToken::cancel`] (the
/// supervisor timing the attempt out) and the token's own deadline, checked
/// against the injected clock every [`DEADLINE_CHECK_STRIDE`] calls so the
/// common case costs one relaxed load.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
    clock: Arc<dyn Clock>,
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.inner.cancelled.load(Ordering::Relaxed))
            .field("deadline_ms", &self.inner.deadline_ms)
            .finish()
    }
}

impl CancelToken {
    /// A token that can only be cancelled explicitly (no deadline).
    #[must_use]
    pub fn unbounded() -> Self {
        CancelToken::with_deadline(Arc::new(MockClock::new()), u64::MAX)
    }

    /// A token that cancels itself once `clock` passes `deadline_ms`.
    #[must_use]
    pub fn with_deadline(clock: Arc<dyn Clock>, deadline_ms: u64) -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline_ms,
                calls: AtomicU64::new(0),
            }),
            clock,
        }
    }

    /// Requests cancellation; every clone observes it.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested or the deadline has passed.
    /// Always consults the clock (no amortization) — use from slow paths.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        if self.clock.now_ms() >= self.inner.deadline_ms {
            self.inner.cancelled.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// The cooperative checkpoint synthesis loops call once per unit of
    /// work. Cheap: one relaxed flag load, plus a clock read every
    /// [`DEADLINE_CHECK_STRIDE`] calls.
    ///
    /// # Errors
    ///
    /// Returns [`SynthCancelled`] once the token is cancelled or past its
    /// deadline.
    #[inline]
    pub fn check(&self) -> Result<(), SynthCancelled> {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return Err(SynthCancelled);
        }
        if self.inner.deadline_ms != u64::MAX {
            let n = self.inner.calls.fetch_add(1, Ordering::Relaxed);
            if n.is_multiple_of(DEADLINE_CHECK_STRIDE)
                && self.clock.now_ms() >= self.inner.deadline_ms
            {
                self.inner.cancelled.store(true, Ordering::Relaxed);
                return Err(SynthCancelled);
            }
        }
        Ok(())
    }
}

/// Capped exponential backoff with deterministic jitter.
///
/// The delay before retry `attempt` (zero-based: the delay after the
/// first failure is `delay(0, …)`) is `min(cap_ms, base_ms << attempt)`
/// plus a splitmix-derived jitter of up to a quarter of that, keyed by
/// `(tag, attempt, seed)` — the schedule is fully reproducible from the
/// seed but different tags do not retry in lockstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Delay after the first failure, in milliseconds.
    pub base_ms: u64,
    /// Upper bound on the un-jittered delay.
    pub cap_ms: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base_ms: 50,
            cap_ms: 5_000,
        }
    }
}

/// The splitmix64 finalizer, used as the deterministic jitter source.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl BackoffPolicy {
    /// The delay, in milliseconds, before retry number `attempt`
    /// (zero-based), jittered deterministically from `tag` and `seed`.
    #[must_use]
    pub fn delay_ms(&self, attempt: u32, tag: u64, seed: u64) -> u64 {
        let shifted = self
            .base_ms
            .checked_shl(attempt.min(32))
            .unwrap_or(self.cap_ms);
        let body = shifted.min(self.cap_ms);
        let jitter_span = body / 4;
        if jitter_span == 0 {
            return body;
        }
        let j = splitmix(seed ^ tag.rotate_left(17) ^ u64::from(attempt));
        body + j % (jitter_span + 1)
    }
}

/// Tunables of one supervisor: attempt deadline, retry schedule, and the
/// circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Budget for one synthesis attempt, in clock milliseconds.
    pub deadline_ms: u64,
    /// Retry schedule after failed attempts.
    pub backoff: BackoffPolicy,
    /// Consecutive failures (per tag) that open the circuit breaker.
    pub breaker_failures: u32,
    /// How long an open breaker waits before letting one half-open probe
    /// through. `None` keeps the breaker open permanently: the container
    /// settles on its guarded fallback for good.
    pub breaker_cooldown_ms: Option<u64>,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            deadline_ms: 1_000,
            backoff: BackoffPolicy::default(),
            breaker_failures: 3,
            breaker_cooldown_ms: Some(30_000),
            seed: 0x5E9E,
        }
    }
}

/// One enqueued resynthesis job: everything needed to rebuild the
/// specialized hash off-thread, plus the reservoir generation the widened
/// pattern was snapshotted at (the staleness ticket).
#[derive(Debug, Clone)]
pub struct SynthRequest {
    /// Caller-chosen identity of the hasher being resynthesized (a shard
    /// index, for the sharded containers). Breaker state is per tag.
    pub tag: u64,
    /// The reservoir-widened pattern to synthesize for.
    pub widened: KeyPattern,
    /// Hash family to synthesize.
    pub family: Family,
    /// Instruction-set restriction to preserve.
    pub isa: Isa,
    /// Seed to preserve.
    pub seed: u64,
    /// Reservoir generation at snapshot time; apply-time discard ticket.
    pub snapshot_generation: u64,
}

/// A successfully synthesized (and validated) replacement hash, ready for
/// the container to apply via its migration-epoch machinery.
#[derive(Debug, Clone)]
pub struct ReadyPlan {
    /// Tag of the request this plan answers.
    pub tag: u64,
    /// The replacement specialized hash.
    pub hash: SynthesizedHash,
    /// The widened pattern the hash was synthesized for.
    pub widened: KeyPattern,
    /// Staleness ticket carried over from the request.
    pub snapshot_generation: u64,
    /// Attempts it took (1 = first try).
    pub attempts: u32,
}

/// The pluggable synthesis function the supervisor runs. The default
/// ([`default_runner`]) performs real cancellable synthesis plus plan
/// validation; the chaos harness substitutes runners that hang, panic,
/// error, or return invalid plans.
pub type SynthRunner =
    Arc<dyn Fn(&SynthRequest, &CancelToken) -> Result<SynthesizedHash, SynthError> + Send + Sync>;

/// The production runner: cancellable synthesis for the widened pattern,
/// preserving family/ISA/seed, with the resulting plan validated before it
/// is declared ready — a runner bug (or an injected fault) that produces
/// an out-of-bounds or mask-inconsistent plan is a typed failure, never an
/// installed hash.
#[must_use]
pub fn default_runner() -> SynthRunner {
    default_runner_with_trace(None)
}

/// [`default_runner`], recording an [`ObsEvent::SynthSearch`] per
/// successful synthesis (nodes expanded, candidates rejected, wall-clock
/// time to plan) into `trace` when instrumentation is compiled in.
#[must_use]
pub fn default_runner_with_trace(trace: Option<Arc<EventTrace<ObsEvent>>>) -> SynthRunner {
    runner_with_trace(trace, 1)
}

/// The production runner over the scoped-thread candidate search:
/// identical plans to [`default_runner`] (the search winner is selected
/// under a schedule-independent total order), with cost evaluation spread
/// across up to `jobs` workers. `jobs` of 0 or 1 is the sequential path.
#[must_use]
pub fn parallel_runner(jobs: usize) -> SynthRunner {
    runner_with_trace(None, jobs)
}

/// [`parallel_runner`] recording an [`ObsEvent::SynthSearch`] per
/// successful synthesis into `trace` when instrumentation is compiled in.
#[must_use]
pub fn runner_with_trace(trace: Option<Arc<EventTrace<ObsEvent>>>, jobs: usize) -> SynthRunner {
    Arc::new(move |req, token| {
        let t0 = std::time::Instant::now();
        let (plan, stats) = crate::synth::synthesize_parallel_with_stats_cancel(
            &req.widened,
            req.family,
            jobs,
            token,
        )?;
        crate::plan_io::validate_plan(&plan)?;
        if sepe_obs::enabled() {
            if let Some(trace) = &trace {
                trace.push(ObsEvent::SynthSearch {
                    nodes_expanded: stats.nodes_expanded,
                    candidates_rejected: stats.candidates_rejected,
                    candidates_considered: stats.candidates_considered,
                    time_to_plan_ms: t0.elapsed().as_millis() as u64,
                });
            }
        }
        Ok(SynthesizedHash::new(plan, req.family, req.isa).with_seed(req.seed))
    })
}

/// How attempts execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Each attempt runs on a fresh worker thread; a hung attempt is
    /// detached once its deadline expires, so [`ResynthSupervisor::pump`]
    /// never blocks on synthesis. This is the production mode.
    #[default]
    Thread,
    /// Attempts run synchronously inside `pump`, still under
    /// `catch_unwind` and still deadline-checked through the token.
    /// Deterministic — transcript-replay tests use this mode (a hanging
    /// runner must be cooperative: it observes the token and returns).
    Inline,
}

/// One supervisor state transition, recorded for replay-equality tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transition {
    /// A request was accepted for `tag`.
    Enqueued,
    /// An attempt (1-based) started.
    Started(u32),
    /// The attempt produced a valid hash.
    Succeeded(u32),
    /// The attempt returned a typed error (rendered, so transcripts are
    /// comparable).
    Failed(u32, String),
    /// The attempt's deadline expired before it finished.
    TimedOut(u32),
    /// The attempt panicked and was caught.
    Panicked(u32),
    /// A retry was scheduled for `at_ms`.
    BackoffScheduled(u32, u64),
    /// The per-tag breaker opened after consecutive failures.
    BreakerOpened(u32),
    /// The breaker let a half-open probe through.
    BreakerHalfOpen,
    /// The probe succeeded; the breaker closed.
    BreakerClosed,
    /// A request arrived while the breaker was open and was refused.
    Rejected,
}

impl Transition {
    /// The payload-free [`TransitionKind`] of this transition — the label
    /// its per-kind metric counter is registered under.
    #[must_use]
    pub fn kind(&self) -> TransitionKind {
        match self {
            Transition::Enqueued => TransitionKind::Enqueued,
            Transition::Started(_) => TransitionKind::Started,
            Transition::Succeeded(_) => TransitionKind::Succeeded,
            Transition::Failed(..) => TransitionKind::Failed,
            Transition::TimedOut(_) => TransitionKind::TimedOut,
            Transition::Panicked(_) => TransitionKind::Panicked,
            Transition::BackoffScheduled(..) => TransitionKind::BackoffScheduled,
            Transition::BreakerOpened(_) => TransitionKind::BreakerOpened,
            Transition::BreakerHalfOpen => TransitionKind::BreakerHalfOpen,
            Transition::BreakerClosed => TransitionKind::BreakerClosed,
            Transition::Rejected => TransitionKind::Rejected,
        }
    }
}

/// A timestamped, tagged transcript entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Clock time of the transition.
    pub at_ms: u64,
    /// Tag the transition belongs to.
    pub tag: u64,
    /// What happened.
    pub transition: Transition,
}

/// Result of offering a request to the supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enqueue {
    /// The job was accepted and will run at the next pump.
    Accepted,
    /// A job for this tag is already pending, running, or backing off;
    /// the new request was coalesced into nothing.
    Coalesced,
    /// The tag's circuit breaker is open; the request was refused.
    BreakerOpen,
}

/// What one synthesis attempt came back with.
enum AttemptOutcome {
    Ok(SynthesizedHash),
    Err(SynthError),
    Panicked,
}

/// A running attempt: the channel its worker reports on plus bookkeeping.
struct Running {
    rx: mpsc::Receiver<AttemptOutcome>,
    token: CancelToken,
    deadline_ms: u64,
    /// `None` in inline mode (the attempt already completed inside pump).
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Per-tag breaker state. `failures` counts *consecutive* failures; any
/// success resets it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Breaker {
    Closed { failures: u32 },
    Open { since_ms: u64 },
    HalfOpen,
}

/// Job state for one tag.
enum JobState {
    Idle,
    Pending { attempt: u32 },
    Running { attempt: u32, running: Running },
    Backoff { attempt: u32, until_ms: u64 },
}

struct TagState {
    job: JobState,
    breaker: Breaker,
    request: Option<SynthRequest>,
}

impl TagState {
    fn new() -> Self {
        TagState {
            job: JobState::Idle,
            breaker: Breaker::Closed { failures: 0 },
            request: None,
        }
    }
}

/// The resynthesis supervisor: a polled state machine that runs synthesis
/// attempts off the serving path, retries them with backoff, and trips a
/// per-tag circuit breaker.
///
/// # Examples
///
/// ```
/// use sepe_core::regex::Regex;
/// use sepe_core::supervisor::{
///     MockClock, ResynthSupervisor, SupervisorConfig, SynthRequest,
/// };
/// use sepe_core::synth::Family;
/// use sepe_core::Isa;
/// use std::sync::Arc;
///
/// let clock = Arc::new(MockClock::new());
/// let mut sup = ResynthSupervisor::new(SupervisorConfig::default(), clock.clone());
/// let widened = Regex::compile(r"[0-9x]{8}")?;
/// sup.enqueue(SynthRequest {
///     tag: 0,
///     widened,
///     family: Family::OffXor,
///     isa: Isa::Native,
///     seed: 0,
///     snapshot_generation: 0,
/// });
/// sup.pump();
/// # let mut spins = 0;
/// while sup.take_ready().is_empty() {
///     clock.advance(1);
///     sup.pump();
/// #   spins += 1;
/// #   assert!(spins < 10_000, "synthesis should complete");
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct ResynthSupervisor {
    config: SupervisorConfig,
    clock: Arc<dyn Clock>,
    runner: SynthRunner,
    exec: ExecMode,
    tags: BTreeMap<u64, TagState>,
    ready: Vec<ReadyPlan>,
    /// Bounded transcript ring (shared so metric exports can read its
    /// drop accounting without holding the supervisor).
    transcript: Arc<EventTrace<Event>>,
    /// Per-[`TransitionKind`] counters, bumped alongside every recorded
    /// transition.
    transitions: Arc<TransitionCounters>,
    /// Synthesis search telemetry recorded by the production runner.
    search_trace: Arc<EventTrace<ObsEvent>>,
    /// Memoized plans: a hit on enqueue-start satisfies the attempt
    /// without spawning a worker or re-running the search.
    cache: Option<Arc<crate::cache::PlanCache>>,
}

/// One saturating counter per [`TransitionKind`].
#[derive(Debug, Default)]
struct TransitionCounters {
    counts: [sepe_obs::Counter; TransitionKind::COUNT],
}

impl std::fmt::Debug for ResynthSupervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResynthSupervisor")
            .field("config", &self.config)
            .field("tags", &self.tags.len())
            .field("ready", &self.ready.len())
            .field("transcript", &self.transcript.len())
            .finish()
    }
}

impl ResynthSupervisor {
    /// A supervisor with the production runner and threaded execution.
    #[must_use]
    pub fn new(config: SupervisorConfig, clock: Arc<dyn Clock>) -> Self {
        let search_trace = Arc::new(EventTrace::new(SEARCH_TRACE_CAPACITY));
        let runner = default_runner_with_trace(Some(search_trace.clone()));
        let mut sup = ResynthSupervisor::with_runner(config, clock, runner, ExecMode::Thread);
        sup.search_trace = search_trace;
        sup
    }

    /// A supervisor with a custom runner and execution mode — the chaos
    /// and replay harnesses build themselves with this. The search trace
    /// stays empty unless the runner was built with
    /// [`default_runner_with_trace`] over
    /// [`ResynthSupervisor::search_events`]' backing trace.
    #[must_use]
    pub fn with_runner(
        config: SupervisorConfig,
        clock: Arc<dyn Clock>,
        runner: SynthRunner,
        exec: ExecMode,
    ) -> Self {
        ResynthSupervisor {
            config,
            clock,
            runner,
            exec,
            tags: BTreeMap::new(),
            ready: Vec::new(),
            transcript: Arc::new(EventTrace::new(TRANSCRIPT_CAPACITY)),
            transitions: Arc::new(TransitionCounters::default()),
            search_trace: Arc::new(EventTrace::new(SEARCH_TRACE_CAPACITY)),
            cache: None,
        }
    }

    /// A supervisor with the production runner spread over `jobs` search
    /// workers and a shared [`crate::cache::PlanCache`]. Plans are
    /// bit-identical to [`ResynthSupervisor::new`]'s at any `jobs` value.
    #[must_use]
    pub fn new_parallel(
        config: SupervisorConfig,
        clock: Arc<dyn Clock>,
        jobs: usize,
        cache: Option<Arc<crate::cache::PlanCache>>,
    ) -> Self {
        let search_trace = Arc::new(EventTrace::new(SEARCH_TRACE_CAPACITY));
        let runner = runner_with_trace(Some(search_trace.clone()), jobs);
        let mut sup = ResynthSupervisor::with_runner(config, clock, runner, ExecMode::Thread);
        sup.search_trace = search_trace;
        sup.cache = cache;
        sup
    }

    /// Attaches a plan cache: attempts whose `(pattern, family)` is
    /// already memoized succeed at start without spawning a worker, and
    /// every successful synthesis populates the cache.
    #[must_use]
    pub fn cached(mut self, cache: Arc<crate::cache::PlanCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &SupervisorConfig {
        &self.config
    }

    fn record(&mut self, tag: u64, transition: Transition) {
        let at_ms = self.clock.now_ms();
        self.transitions.counts[transition.kind().index()].inc();
        self.transcript.push(Event {
            at_ms,
            tag,
            transition,
        });
    }

    /// Offers a resynthesis job. Jobs coalesce per tag (a tag has at most
    /// one job in flight) and are refused while the tag's breaker is open.
    pub fn enqueue(&mut self, request: SynthRequest) -> Enqueue {
        let tag = request.tag;
        let now = self.clock.now_ms();
        let state = self.tags.entry(tag).or_insert_with(TagState::new);
        // An open breaker lets one probe through after its cooldown.
        if let Breaker::Open { since_ms } = state.breaker {
            match self.config.breaker_cooldown_ms {
                Some(cooldown) if now >= since_ms.saturating_add(cooldown) => {
                    state.breaker = Breaker::HalfOpen;
                    self.record(tag, Transition::BreakerHalfOpen);
                }
                _ => {
                    self.record(tag, Transition::Rejected);
                    return Enqueue::BreakerOpen;
                }
            }
        }
        let state = self.tags.get_mut(&tag).expect("tag state exists");
        if !matches!(state.job, JobState::Idle) {
            return Enqueue::Coalesced;
        }
        state.request = Some(request);
        state.job = JobState::Pending { attempt: 1 };
        self.record(tag, Transition::Enqueued);
        Enqueue::Accepted
    }

    /// Whether `tag`'s breaker is currently open (cooldown not elapsed).
    #[must_use]
    pub fn breaker_open(&self, tag: u64) -> bool {
        matches!(
            self.tags.get(&tag).map(|s| s.breaker),
            Some(Breaker::Open { .. })
        )
    }

    /// Tags with a job pending, running, or backing off.
    #[must_use]
    pub fn active_jobs(&self) -> usize {
        self.tags
            .values()
            .filter(|s| !matches!(s.job, JobState::Idle))
            .count()
    }

    /// Completed plans accumulated since the last call. The caller applies
    /// them (or discards stale ones) through the container's epoch swap.
    pub fn take_ready(&mut self) -> Vec<ReadyPlan> {
        std::mem::take(&mut self.ready)
    }

    /// The retained transition transcript (timestamped, tagged, oldest
    /// first), for replay-equality assertions. Backed by a bounded ring:
    /// past [`TRANSCRIPT_CAPACITY`] events the newest are dropped and
    /// counted in [`ResynthSupervisor::transcript_dropped`].
    #[must_use]
    pub fn transcript(&self) -> Vec<Event> {
        self.transcript.snapshot()
    }

    /// Transcript events rejected because the ring was full.
    #[must_use]
    pub fn transcript_dropped(&self) -> u64 {
        self.transcript.dropped()
    }

    /// Lifetime count of transitions recorded for `kind` (unaffected by
    /// transcript-ring overflow).
    #[must_use]
    pub fn transition_count(&self, kind: TransitionKind) -> u64 {
        self.transitions.counts[kind.index()].get()
    }

    /// Synthesis search telemetry ([`ObsEvent::SynthSearch`]) recorded by
    /// the production runner, oldest first. Empty for custom runners not
    /// built with [`default_runner_with_trace`], and in `obs`-off builds.
    #[must_use]
    pub fn search_events(&self) -> Vec<ObsEvent> {
        self.search_trace.snapshot()
    }

    /// Exports the supervisor's metric families into `registry`:
    /// `supervisor_transitions{kind=...}` per [`TransitionKind`], plus
    /// transcript ring accounting (`supervisor_transcript_events`,
    /// `supervisor_transcript_dropped`) and the search-event count.
    /// Values are read live at snapshot time.
    ///
    /// # Errors
    ///
    /// Propagates [`sepe_obs::RegistryError`] on duplicate registration.
    pub fn export_metrics(
        &self,
        registry: &sepe_obs::Registry,
    ) -> Result<(), sepe_obs::RegistryError> {
        for kind in TransitionKind::ALL {
            let counts = self.transitions.clone();
            registry.export_counter(
                "supervisor_transitions",
                &[("kind", kind.name())],
                move || counts.counts[kind.index()].get(),
            )?;
        }
        let transcript = self.transcript.clone();
        registry.export_counter("supervisor_transcript_events", &[], move || {
            transcript.pushed()
        })?;
        let transcript = self.transcript.clone();
        registry.export_counter("supervisor_transcript_dropped", &[], move || {
            transcript.dropped()
        })?;
        let search = self.search_trace.clone();
        registry.export_counter("supervisor_search_events", &[], move || search.pushed())?;
        Ok(())
    }

    /// Drives every tag's state machine one step against the current clock
    /// reading: starts pending attempts, reaps or times out running ones,
    /// releases elapsed backoffs, and trips breakers. Never blocks on
    /// synthesis (a hung threaded attempt is detached at its deadline; an
    /// inline attempt must be cooperative).
    pub fn pump(&mut self) {
        let now = self.clock.now_ms();
        let tags: Vec<u64> = self.tags.keys().copied().collect();
        for tag in tags {
            self.pump_tag(tag, now);
        }
    }

    fn pump_tag(&mut self, tag: u64, now: u64) {
        let Some(state) = self.tags.get_mut(&tag) else {
            return;
        };
        match std::mem::replace(&mut state.job, JobState::Idle) {
            JobState::Idle => {}
            JobState::Backoff { attempt, until_ms } => {
                if now >= until_ms {
                    state.job = JobState::Pending { attempt };
                    // Fall through to start the retry in this same pump.
                    self.start_attempt(tag, now);
                } else {
                    state.job = JobState::Backoff { attempt, until_ms };
                }
            }
            JobState::Pending { attempt } => {
                state.job = JobState::Pending { attempt };
                self.start_attempt(tag, now);
            }
            JobState::Running { attempt, running } => {
                self.poll_running(tag, now, attempt, running);
            }
        }
    }

    /// Starts the pending attempt for `tag` (which must be `Pending`).
    fn start_attempt(&mut self, tag: u64, now: u64) {
        let state = self.tags.get_mut(&tag).expect("tag state exists");
        let JobState::Pending { attempt } = state.job else {
            return;
        };
        let Some(request) = state.request.clone() else {
            state.job = JobState::Idle;
            return;
        };
        // A memoized plan satisfies the attempt synchronously: record the
        // same Started → Succeeded transitions a worker would produce, but
        // never spawn one and never re-run the search.
        if let Some(plan) = self
            .cache
            .as_ref()
            .and_then(|c| c.lookup(&request.widened, request.family))
        {
            let hash =
                SynthesizedHash::new(plan, request.family, request.isa).with_seed(request.seed);
            self.record(tag, Transition::Started(attempt));
            self.record(tag, Transition::Succeeded(attempt));
            let state = self.tags.get_mut(&tag).expect("tag state exists");
            let request = state.request.take().expect("pending job has a request");
            state.job = JobState::Idle;
            let was_half_open = state.breaker == Breaker::HalfOpen;
            state.breaker = Breaker::Closed { failures: 0 };
            if was_half_open {
                self.record(tag, Transition::BreakerClosed);
            }
            self.ready.push(ReadyPlan {
                tag,
                hash,
                widened: request.widened,
                snapshot_generation: request.snapshot_generation,
                attempts: attempt,
            });
            return;
        }
        let deadline_ms = now.saturating_add(self.config.deadline_ms);
        let token = CancelToken::with_deadline(Arc::clone(&self.clock), deadline_ms);
        self.record(tag, Transition::Started(attempt));
        let (tx, rx) = mpsc::channel();
        let runner = Arc::clone(&self.runner);
        let run = {
            let token = token.clone();
            move || {
                let outcome = match catch_unwind(AssertUnwindSafe(|| runner(&request, &token))) {
                    Ok(Ok(hash)) => AttemptOutcome::Ok(hash),
                    Ok(Err(e)) => AttemptOutcome::Err(e),
                    Err(_) => AttemptOutcome::Panicked,
                };
                // The supervisor may have detached (deadline passed and the
                // receiver dropped); a dead channel is fine.
                let _ = tx.send(outcome);
            }
        };
        let handle = match self.exec {
            ExecMode::Inline => {
                run();
                None
            }
            ExecMode::Thread => Some(
                std::thread::Builder::new()
                    .name(format!("sepe-resynth-{tag}"))
                    .spawn(run)
                    .expect("spawn resynthesis worker"),
            ),
        };
        let running = Running {
            rx,
            token,
            deadline_ms,
            handle,
        };
        let state = self.tags.get_mut(&tag).expect("tag state exists");
        state.job = JobState::Running { attempt, running };
        // Inline attempts finish immediately; reap them in the same pump.
        if self.exec == ExecMode::Inline {
            self.pump_tag(tag, now);
        }
    }

    /// Reaps a finished attempt, or times it out past its deadline.
    fn poll_running(&mut self, tag: u64, now: u64, attempt: u32, running: Running) {
        match running.rx.try_recv() {
            Ok(AttemptOutcome::Ok(hash)) => {
                if let Some(h) = running.handle {
                    let _ = h.join();
                }
                self.record(tag, Transition::Succeeded(attempt));
                let state = self.tags.get_mut(&tag).expect("tag state exists");
                let request = state.request.take().expect("running job has a request");
                state.job = JobState::Idle;
                if let Some(cache) = &self.cache {
                    cache.insert(&request.widened, request.family, hash.plan().clone());
                }
                let was_half_open = state.breaker == Breaker::HalfOpen;
                state.breaker = Breaker::Closed { failures: 0 };
                if was_half_open {
                    self.record(tag, Transition::BreakerClosed);
                }
                self.ready.push(ReadyPlan {
                    tag,
                    hash,
                    widened: request.widened,
                    snapshot_generation: request.snapshot_generation,
                    attempts: attempt,
                });
            }
            Ok(AttemptOutcome::Err(e)) => {
                if let Some(h) = running.handle {
                    let _ = h.join();
                }
                self.record(tag, Transition::Failed(attempt, e.to_string()));
                self.fail_attempt(tag, now, attempt);
            }
            Ok(AttemptOutcome::Panicked) => {
                if let Some(h) = running.handle {
                    let _ = h.join();
                }
                self.record(tag, Transition::Panicked(attempt));
                self.fail_attempt(tag, now, attempt);
            }
            Err(mpsc::TryRecvError::Empty) => {
                if now >= running.deadline_ms {
                    // Cancel cooperatively and *detach*: dropping the
                    // receiver and the handle lets a cooperative worker
                    // exit on its next token check, and a truly wedged one
                    // can never block the pump.
                    running.token.cancel();
                    drop(running);
                    self.record(tag, Transition::TimedOut(attempt));
                    self.fail_attempt(tag, now, attempt);
                } else {
                    let state = self.tags.get_mut(&tag).expect("tag state exists");
                    state.job = JobState::Running { attempt, running };
                }
            }
            Err(mpsc::TryRecvError::Disconnected) => {
                // The worker died without reporting (should be unreachable:
                // catch_unwind converts panics into a send). Count it as a
                // panic-shaped failure rather than losing the job.
                self.record(tag, Transition::Panicked(attempt));
                self.fail_attempt(tag, now, attempt);
            }
        }
    }

    /// Books one failed attempt: trips the breaker at the threshold,
    /// otherwise schedules the next retry.
    fn fail_attempt(&mut self, tag: u64, now: u64, attempt: u32) {
        let threshold = self.config.breaker_failures.max(1);
        let state = self.tags.get_mut(&tag).expect("tag state exists");
        let failures = match state.breaker {
            Breaker::Closed { failures } => failures + 1,
            // A failed half-open probe re-opens immediately.
            Breaker::HalfOpen => threshold,
            Breaker::Open { .. } => threshold,
        };
        if failures >= threshold {
            state.breaker = Breaker::Open { since_ms: now };
            state.job = JobState::Idle;
            state.request = None;
            self.record(tag, Transition::BreakerOpened(failures));
            return;
        }
        state.breaker = Breaker::Closed { failures };
        let delay = self
            .config
            .backoff
            .delay_ms(attempt - 1, tag, self.config.seed);
        let until_ms = now.saturating_add(delay);
        state.job = JobState::Backoff {
            attempt: attempt + 1,
            until_ms,
        };
        self.record(tag, Transition::BackoffScheduled(attempt + 1, until_ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;

    fn request(tag: u64) -> SynthRequest {
        SynthRequest {
            tag,
            widened: Regex::compile(r"[0-9x]{11}").expect("pattern"),
            family: Family::OffXor,
            isa: Isa::Native,
            seed: 7,
            snapshot_generation: 0,
        }
    }

    fn failing_runner() -> SynthRunner {
        Arc::new(|_, _| Err(SynthError::EmptyFormat))
    }

    fn panicking_runner() -> SynthRunner {
        Arc::new(|_, _| panic!("injected synthesis panic"))
    }

    /// Cooperative hang: spins until the token cancels it.
    fn hanging_runner() -> SynthRunner {
        Arc::new(|_, token| loop {
            token
                .check()
                .map_err(|_| SynthError::Cancelled)
                .map(|()| std::hint::spin_loop())?;
        })
    }

    fn sup(runner: SynthRunner, config: SupervisorConfig) -> (ResynthSupervisor, Arc<MockClock>) {
        let clock = Arc::new(MockClock::new());
        let s = ResynthSupervisor::with_runner(
            config,
            clock.clone() as Arc<dyn Clock>,
            runner,
            ExecMode::Inline,
        );
        (s, clock)
    }

    fn kinds(sup: &ResynthSupervisor) -> Vec<Transition> {
        sup.transcript().into_iter().map(|e| e.transition).collect()
    }

    #[test]
    fn successful_job_completes_first_try() {
        let (mut s, _clock) = sup(default_runner(), SupervisorConfig::default());
        assert_eq!(s.enqueue(request(3)), Enqueue::Accepted);
        s.pump();
        let ready = s.take_ready();
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].tag, 3);
        assert_eq!(ready[0].attempts, 1);
        assert!(!ready[0].hash.plan().is_fallback());
        assert_eq!(s.active_jobs(), 0);
        assert_eq!(
            kinds(&s),
            vec![
                Transition::Enqueued,
                Transition::Started(1),
                Transition::Succeeded(1)
            ]
        );
        assert_eq!(s.transition_count(TransitionKind::Enqueued), 1);
        assert_eq!(s.transition_count(TransitionKind::Succeeded), 1);
        assert_eq!(s.transition_count(TransitionKind::Failed), 0);
    }

    #[test]
    fn jobs_coalesce_per_tag() {
        let (mut s, _clock) = sup(failing_runner(), SupervisorConfig::default());
        assert_eq!(s.enqueue(request(1)), Enqueue::Accepted);
        assert_eq!(s.enqueue(request(1)), Enqueue::Coalesced);
        assert_eq!(s.active_jobs(), 1);
    }

    #[test]
    fn failures_back_off_then_trip_the_breaker() {
        let config = SupervisorConfig {
            breaker_failures: 3,
            breaker_cooldown_ms: None,
            ..SupervisorConfig::default()
        };
        let (mut s, clock) = sup(failing_runner(), config);
        s.enqueue(request(0));
        // Attempt 1 fails -> backoff. Attempts 2 and 3 fail -> breaker.
        s.pump();
        assert_eq!(s.active_jobs(), 1, "job is backing off, not dead");
        let Some(&Event {
            transition: Transition::BackoffScheduled(2, until),
            ..
        }) = s
            .transcript()
            .iter()
            .find(|e| matches!(e.transition, Transition::BackoffScheduled(..)))
        else {
            panic!("expected a scheduled backoff, got {:?}", kinds(&s));
        };
        let expected = config.backoff.delay_ms(0, 0, config.seed);
        assert_eq!(until, expected, "backoff uses the deterministic schedule");
        // Pumping before the backoff elapses does nothing.
        s.pump();
        assert!(!s
            .transcript()
            .iter()
            .any(|e| matches!(e.transition, Transition::Started(2))));
        clock.set(until);
        s.pump(); // attempt 2 fails
        clock.advance(config.backoff.cap_ms * 2);
        s.pump(); // attempt 3 fails -> breaker opens
        assert!(s.breaker_open(0));
        assert_eq!(s.active_jobs(), 0, "breaker clears the job");
        let opened = s
            .transcript()
            .iter()
            .filter(|e| matches!(e.transition, Transition::BreakerOpened(3)))
            .count();
        assert_eq!(opened, 1, "breaker opened exactly once, at 3");
        // Permanently open: later requests are refused.
        clock.advance(1 << 40);
        assert_eq!(s.enqueue(request(0)), Enqueue::BreakerOpen);
    }

    #[test]
    fn transition_counters_agree_with_the_transcript_and_export_cleanly() {
        // Drive three failing tags through backoff and breaker opening,
        // then require that every per-kind counter equals the
        // transcript-derived count — both via the direct accessor and
        // through a `Registry` snapshot wired by `export_metrics`.
        let config = SupervisorConfig {
            breaker_failures: 2,
            breaker_cooldown_ms: None,
            ..SupervisorConfig::default()
        };
        let (mut s, clock) = sup(failing_runner(), config);
        for tag in 0..3 {
            assert_eq!(s.enqueue(request(tag)), Enqueue::Accepted);
        }
        for _ in 0..8 {
            s.pump();
            clock.advance(config.backoff.cap_ms * 2);
        }
        assert!(s.breaker_open(0) && s.breaker_open(1) && s.breaker_open(2));
        let transcript = s.transcript();
        assert_eq!(s.transcript_dropped(), 0, "scenario fits in the ring");
        for kind in TransitionKind::ALL {
            let derived = transcript
                .iter()
                .filter(|e| e.transition.kind() == kind)
                .count() as u64;
            assert_eq!(s.transition_count(kind), derived, "kind {}", kind.name());
        }
        let registry = sepe_obs::Registry::new();
        s.export_metrics(&registry).expect("first export succeeds");
        let snap = registry.snapshot();
        for kind in TransitionKind::ALL {
            let id = sepe_obs::metric_id("supervisor_transitions", &[("kind", kind.name())])
                .expect("metric id");
            assert_eq!(
                snap.counter(&id),
                Some(s.transition_count(kind)),
                "kind {}",
                kind.name()
            );
        }
        assert_eq!(
            snap.counter_family_total("supervisor_transitions"),
            transcript.len() as u64,
            "every transcript event is counted exactly once"
        );
        assert_eq!(
            snap.counter("supervisor_transcript_events"),
            Some(transcript.len() as u64)
        );
        assert_eq!(snap.counter("supervisor_transcript_dropped"), Some(0));
        // Re-exporting into the same registry is a duplicate registration.
        assert!(s.export_metrics(&registry).is_err());
    }

    #[test]
    fn panics_are_isolated_and_counted() {
        let config = SupervisorConfig {
            breaker_failures: 2,
            ..SupervisorConfig::default()
        };
        let (mut s, clock) = sup(panicking_runner(), config);
        s.enqueue(request(9));
        s.pump();
        assert!(s
            .transcript()
            .iter()
            .any(|e| matches!(e.transition, Transition::Panicked(1))));
        clock.advance(config.backoff.cap_ms * 2);
        s.pump();
        assert!(s.breaker_open(9), "two panics open a 2-failure breaker");
    }

    #[test]
    fn hanging_synthesis_times_out_at_the_deadline() {
        // Threaded execution: the worker really spins until cancelled.
        let clock = Arc::new(MockClock::new());
        let config = SupervisorConfig {
            deadline_ms: 100,
            breaker_failures: 1,
            ..SupervisorConfig::default()
        };
        let mut s = ResynthSupervisor::with_runner(
            config,
            clock.clone() as Arc<dyn Clock>,
            hanging_runner(),
            ExecMode::Thread,
        );
        s.enqueue(request(4));
        s.pump(); // starts the worker
        s.pump(); // still running, before the deadline
        assert_eq!(s.active_jobs(), 1);
        clock.advance(100);
        s.pump(); // deadline passed: cancel + detach + fail
        assert!(s
            .transcript()
            .iter()
            .any(|e| matches!(e.transition, Transition::TimedOut(1))));
        assert!(s.breaker_open(4), "1-failure breaker opens on the timeout");
    }

    #[test]
    fn half_open_probe_closes_the_breaker_on_success() {
        // Fail until the breaker opens, then swap in a succeeding runner
        // via a switchable fault flag.
        let fail = Arc::new(AtomicBool::new(true));
        let flag = Arc::clone(&fail);
        let runner: SynthRunner = Arc::new(move |req, token| {
            if flag.load(Ordering::Relaxed) {
                Err(SynthError::EmptyFormat)
            } else {
                default_runner()(req, token)
            }
        });
        let config = SupervisorConfig {
            breaker_failures: 1,
            breaker_cooldown_ms: Some(1_000),
            ..SupervisorConfig::default()
        };
        let (mut s, clock) = sup(runner, config);
        s.enqueue(request(2));
        s.pump();
        assert!(s.breaker_open(2));
        // Before the cooldown: refused.
        clock.advance(999);
        assert_eq!(s.enqueue(request(2)), Enqueue::BreakerOpen);
        // After the cooldown: half-open probe runs and closes the breaker.
        fail.store(false, Ordering::Relaxed);
        clock.advance(1);
        assert_eq!(s.enqueue(request(2)), Enqueue::Accepted);
        s.pump();
        assert!(!s.breaker_open(2));
        assert_eq!(s.take_ready().len(), 1);
        assert!(s
            .transcript()
            .iter()
            .any(|e| matches!(e.transition, Transition::BreakerHalfOpen)));
        assert!(s
            .transcript()
            .iter()
            .any(|e| matches!(e.transition, Transition::BreakerClosed)));
    }

    #[test]
    fn failed_probe_reopens_the_breaker() {
        let config = SupervisorConfig {
            breaker_failures: 1,
            breaker_cooldown_ms: Some(10),
            ..SupervisorConfig::default()
        };
        let (mut s, clock) = sup(failing_runner(), config);
        s.enqueue(request(5));
        s.pump();
        assert!(s.breaker_open(5));
        clock.advance(10);
        assert_eq!(s.enqueue(request(5)), Enqueue::Accepted, "probe admitted");
        s.pump();
        assert!(s.breaker_open(5), "failed probe re-opens");
    }

    #[test]
    fn transcripts_replay_identically_from_seed_and_clock() {
        // Two supervisors, same config, same scripted fault sequence, same
        // clock script: byte-identical transcripts.
        let run_once = || {
            let calls = AtomicU64::new(0);
            let runner: SynthRunner = Arc::new(move |req, token| {
                let n = calls.fetch_add(1, Ordering::Relaxed);
                if n < 2 {
                    Err(SynthError::EmptyFormat)
                } else {
                    default_runner()(req, token)
                }
            });
            let config = SupervisorConfig {
                breaker_failures: 5,
                ..SupervisorConfig::default()
            };
            let (mut s, clock) = sup(runner, config);
            s.enqueue(request(11));
            for _ in 0..8 {
                s.pump();
                clock.advance(config.backoff.cap_ms);
            }
            (s.transcript().to_vec(), s.take_ready().len())
        };
        let (t1, r1) = run_once();
        let (t2, r2) = run_once();
        assert_eq!(t1, t2, "transcripts must replay identically");
        assert_eq!(r1, 1);
        assert_eq!(r2, 1);
        assert!(t1
            .iter()
            .any(|e| matches!(e.transition, Transition::Succeeded(3))));
    }

    #[test]
    fn backoff_delays_are_capped_and_deterministic() {
        let p = BackoffPolicy {
            base_ms: 100,
            cap_ms: 1_000,
        };
        for attempt in 0..40 {
            let d1 = p.delay_ms(attempt, 7, 42);
            let d2 = p.delay_ms(attempt, 7, 42);
            assert_eq!(d1, d2, "same inputs, same delay");
            assert!(d1 <= p.cap_ms + p.cap_ms / 4, "cap plus jitter bound");
        }
        assert!(p.delay_ms(0, 7, 42) < p.delay_ms(5, 7, 42));
        // Different tags jitter differently somewhere in the schedule.
        assert!((0..8).any(|a| p.delay_ms(a, 1, 42) != p.delay_ms(a, 2, 42)));
    }

    #[test]
    fn cancel_token_deadline_is_cooperative() {
        let clock = Arc::new(MockClock::new());
        let token = CancelToken::with_deadline(clock.clone() as Arc<dyn Clock>, 50);
        for _ in 0..1_000 {
            assert!(token.check().is_ok());
        }
        clock.advance(50);
        // The amortized stride means the *first* check after expiry might
        // pass; within one stride it must fail.
        let failed = (0..=DEADLINE_CHECK_STRIDE).any(|_| token.check().is_err());
        assert!(failed, "deadline observed within one stride");
        assert!(token.is_cancelled());
        assert_eq!(token.check(), Err(SynthCancelled));
    }

    #[test]
    fn explicit_cancel_is_immediate() {
        let token = CancelToken::unbounded();
        assert!(token.check().is_ok());
        let clone = token.clone();
        clone.cancel();
        assert_eq!(token.check(), Err(SynthCancelled));
        assert!(token.is_cancelled());
    }

    /// Patterns a seed-derived drift schedule picks from.
    const REPLAY_PATTERNS: &[&str] = &[
        r"[0-9]{3}-[0-9]{2}-[0-9]{4}",
        r"[0-9]{20}",
        r"[a-z]{16}",
        r"[A-Z]{2}[0-9]{10}",
    ];

    fn seeded_request(seed: u64, i: u64) -> SynthRequest {
        let pick = ((seed >> (8 * i)) as usize) % REPLAY_PATTERNS.len();
        let family = Family::ALL[((seed >> (8 * i + 4)) as usize) % Family::ALL.len()];
        SynthRequest {
            tag: i,
            widened: Regex::compile(REPLAY_PATTERNS[pick]).expect("pattern"),
            family,
            isa: Isa::Portable,
            seed,
            snapshot_generation: 0,
        }
    }

    #[test]
    fn parallel_synthesis_transcripts_replay_identically_across_seeds() {
        // Under MockClock + inline pumping, a supervisor running the
        // parallel search must replay byte-identically — and produce the
        // same ready plans as the sequential production runner.
        for seed in [0x5E9Eu64, 0xC4A05, 0xD1F7] {
            let run_once = |runner: SynthRunner| {
                let (mut s, clock) = sup(runner, SupervisorConfig::default());
                for i in 0..4 {
                    s.enqueue(seeded_request(seed, i));
                    s.pump();
                    clock.advance(1);
                }
                let plans: Vec<String> = s
                    .take_ready()
                    .iter()
                    .map(|r| crate::plan_io::plan_to_string(r.hash.plan()))
                    .collect();
                (s.transcript(), plans)
            };
            let (t1, p1) = run_once(parallel_runner(4));
            let (t2, p2) = run_once(parallel_runner(4));
            let (t3, p3) = run_once(default_runner());
            assert_eq!(t1, t2, "seed {seed:#x}: parallel replay");
            assert_eq!(p1, p2, "seed {seed:#x}: parallel plans replay");
            assert_eq!(t1, t3, "seed {seed:#x}: parallel vs sequential transcript");
            assert_eq!(p1, p3, "seed {seed:#x}: parallel vs sequential plans");
            assert_eq!(p1.len(), 4, "seed {seed:#x}: all four tags resynthesized");
        }
    }

    #[test]
    fn cache_hit_applies_without_spawning_a_worker() {
        // Regression: a memoized plan must satisfy Pending → Running →
        // Applied synchronously. The runner panics if ever invoked, and we
        // run in Thread mode — any spawn would record a Panicked
        // transition.
        let cache = Arc::new(crate::cache::PlanCache::new(8));
        let req = request(9);
        cache.insert(
            &req.widened,
            req.family,
            crate::synth::synthesize(&req.widened, req.family),
        );
        let clock = Arc::new(MockClock::new());
        let runner: SynthRunner = Arc::new(|_, _| panic!("cache hit must not spawn a worker"));
        let mut s = ResynthSupervisor::with_runner(
            SupervisorConfig::default(),
            clock as Arc<dyn Clock>,
            runner,
            ExecMode::Thread,
        )
        .cached(cache.clone());
        assert_eq!(s.enqueue(req), Enqueue::Accepted);
        s.pump();
        let ready = s.take_ready();
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].attempts, 1);
        assert_eq!(
            kinds(&s),
            vec![
                Transition::Enqueued,
                Transition::Started(1),
                Transition::Succeeded(1)
            ]
        );
        assert_eq!(s.transition_count(TransitionKind::Panicked), 0);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn successful_synthesis_populates_the_cache_for_the_next_drift() {
        let cache = Arc::new(crate::cache::PlanCache::new(8));
        let clock = Arc::new(MockClock::new());
        let mut s = ResynthSupervisor::with_runner(
            SupervisorConfig::default(),
            clock as Arc<dyn Clock>,
            default_runner(),
            ExecMode::Inline,
        )
        .cached(cache.clone());
        s.enqueue(request(5));
        s.pump();
        let first = s.take_ready();
        assert_eq!(first.len(), 1);
        assert_eq!(cache.insertions(), 1);
        assert_eq!(cache.hits(), 0);
        // Second drift on the same format: served from the cache.
        s.enqueue(request(5));
        s.pump();
        let second = s.take_ready();
        assert_eq!(second.len(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.insertions(), 1, "a hit is not re-inserted");
        assert_eq!(
            crate::plan_io::plan_to_string(first[0].hash.plan()),
            crate::plan_io::plan_to_string(second[0].hash.plan()),
        );
    }
}
