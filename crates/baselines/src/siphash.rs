//! SipHash-1-3 as a keyed baseline — the HashDoS-resistant rung of the
//! escalation ladder.
//!
//! Every other baseline in this crate is *unkeyed*: an adversary holding
//! the binary can evaluate it offline and precompute colliding keys
//! (`tests/adversarial.rs` does exactly that for the linear synthesized
//! families, and CityHash is no harder). [`SipHash13`] carries a 128-bit
//! secret, so collision precomputation requires key recovery first. It is
//! the hash the containers escalate to when the collision-storm detector
//! trips, and — with rotated keys — the final rung when an escalated seed
//! is suspected leaked.

use sepe_core::hash::keyed::{siphash13, SeedSource};
use sepe_core::hash::ByteHash;

/// SipHash-1-3 keyed by a 128-bit secret.
///
/// # Examples
///
/// ```
/// use sepe_baselines::SipHash13;
/// use sepe_core::hash::keyed::FixedSeedSource;
/// use sepe_core::ByteHash;
///
/// let a = SipHash13::with_keys(1, 2);
/// assert_eq!(a.hash_bytes(b"10.0.0.1"), a.hash_bytes(b"10.0.0.1"));
///
/// // Fresh seeds come from a SeedSource; a rotated key changes the codes.
/// let src = FixedSeedSource::new(42);
/// let b = SipHash13::from_source(&src);
/// let c = SipHash13::from_source(&src);
/// assert_ne!(b.hash_bytes(b"10.0.0.1"), c.hash_bytes(b"10.0.0.1"));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SipHash13 {
    k0: u64,
    k1: u64,
}

impl SipHash13 {
    /// SipHash-1-3 with an explicit key pair.
    #[must_use]
    pub fn with_keys(k0: u64, k1: u64) -> Self {
        SipHash13 { k0, k1 }
    }

    /// SipHash-1-3 keyed from the next seed of `source`.
    #[must_use]
    pub fn from_source(source: &impl SeedSource) -> Self {
        let (k0, k1) = source.next_seed();
        SipHash13 { k0, k1 }
    }

    /// The key pair this instance hashes under.
    #[must_use]
    pub fn keys(&self) -> (u64, u64) {
        (self.k0, self.k1)
    }
}

// Keyed hashing has no per-key op schedule to interleave; the scalar
// batch loop is the honest baseline shape.
impl sepe_core::hash::HashBatch for SipHash13 {}

impl ByteHash for SipHash13 {
    #[inline]
    fn hash_bytes(&self, key: &[u8]) -> u64 {
        siphash13(self.k0, self.k1, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_core::hash::keyed::FixedSeedSource;
    use sepe_core::hash::HashBatch;

    #[test]
    fn matches_the_core_primitive() {
        let h = SipHash13::with_keys(0x5E9E, 0xC4A05);
        assert_eq!(h.hash_bytes(b"abc"), siphash13(0x5E9E, 0xC4A05, b"abc"));
    }

    #[test]
    fn different_keys_give_different_codes() {
        let a = SipHash13::with_keys(1, 2);
        let b = SipHash13::with_keys(1, 3);
        assert_ne!(a.hash_bytes(b"198.51.100.7"), b.hash_bytes(b"198.51.100.7"));
    }

    #[test]
    fn from_source_draws_fresh_keys() {
        let src = FixedSeedSource::new(7);
        let a = SipHash13::from_source(&src);
        let b = SipHash13::from_source(&src);
        assert_ne!(a.keys(), b.keys());
    }

    #[test]
    fn batch_agrees_with_scalar() {
        let h = SipHash13::with_keys(3, 4);
        let keys: Vec<&[u8]> = vec![b"a", b"bb", b"ccc", b"123-45-6789"];
        let mut out = vec![0u64; keys.len()];
        h.hash_batch(&keys, &mut out);
        for (key, code) in keys.iter().zip(&out) {
            assert_eq!(h.hash_bytes(key), *code);
        }
    }
}
