//! A gperf-style perfect-hash-function generator — the paper's **Gperf**
//! baseline.
//!
//! GNU gperf produces `hash = len + asso[key[p1]] + asso[key[p2]] + …` for a
//! small set of *keyword positions* `p1, p2, …` and a 256-entry table of
//! *associated values*, searched so that the training keywords hash
//! perfectly. This module reimplements that scheme: greedy position
//! selection followed by an iterative associated-value repair search.
//!
//! Like the original when fed 1000 random keys (Section 4 of the paper),
//! the result is only near-perfect on its training set and collides heavily
//! on unseen keys: the per-*value* (not per-position) associated table makes
//! keys that permute the same characters at the selected positions collide
//! unavoidably. The paper's evaluation depends on exactly this pathology
//! (high B-Time despite the lowest H-Time).

use sepe_core::hash::ByteHash;

/// Maximum number of keyword positions the generator will select.
const MAX_POSITIONS: usize = 12;

/// Maximum number of associated-value repair sweeps.
const MAX_REPAIR_SWEEPS: usize = 200;

/// A trained gperf-style hash function.
///
/// # Examples
///
/// ```
/// use sepe_baselines::GperfHash;
/// use sepe_core::ByteHash;
///
/// let keys: Vec<String> = (0..100).map(|i| format!("{i:03}-{i:02}")).collect();
/// let h = GperfHash::train(keys.iter().map(|k| k.as_bytes()));
/// let _ = h.hash_bytes(b"042-42");
/// ```
#[derive(Debug, Clone)]
pub struct GperfHash {
    positions: Vec<usize>,
    asso: Box<[u32; 256]>,
    /// Whether the training set hashed without collisions.
    perfect: bool,
}

impl GperfHash {
    /// Trains the generator on a set of keywords.
    ///
    /// Duplicated keys are deduplicated first. An empty training set yields
    /// a function that returns the key length.
    pub fn train<'a, I>(keys: I) -> Self
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let mut keys: Vec<&[u8]> = keys.into_iter().collect();
        keys.sort_unstable();
        keys.dedup();
        let positions = select_positions(&keys);
        let (asso, perfect) = search_asso_values(&keys, &positions);
        GperfHash {
            positions,
            asso,
            perfect,
        }
    }

    /// The keyword positions the function inspects.
    #[must_use]
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// Whether training achieved a perfect hash on the training set.
    #[must_use]
    pub fn is_perfect(&self) -> bool {
        self.perfect
    }

    #[inline]
    fn raw_hash(&self, key: &[u8]) -> u64 {
        let mut h = key.len() as u64;
        for &p in &self.positions {
            if let Some(&b) = key.get(p) {
                h += u64::from(self.asso[b as usize]);
            }
        }
        h
    }
}

// Baselines take the default scalar batch loop: they have no common
// per-key op schedule to interleave, and the benchmark suite uses them
// as the scalar reference.
impl sepe_core::hash::HashBatch for GperfHash {}

impl ByteHash for GperfHash {
    #[inline]
    fn hash_bytes(&self, key: &[u8]) -> u64 {
        self.raw_hash(key)
    }
}

/// Greedily selects positions that reduce the number of duplicated
/// signatures (bytes at the selected positions plus the length), the analog
/// of gperf's keyword-position optimization.
fn select_positions(keys: &[&[u8]]) -> Vec<usize> {
    let max_len = keys.iter().map(|k| k.len()).max().unwrap_or(0);
    let mut chosen: Vec<usize> = Vec::new();
    let mut best_dups = duplicate_signatures(keys, &chosen);
    while chosen.len() < MAX_POSITIONS && best_dups > 0 {
        let mut best_pos = None;
        for p in 0..max_len {
            if chosen.contains(&p) {
                continue;
            }
            let mut candidate = chosen.clone();
            candidate.push(p);
            let dups = duplicate_signatures(keys, &candidate);
            if dups < best_dups {
                best_dups = dups;
                best_pos = Some(p);
            }
        }
        match best_pos {
            Some(p) => chosen.push(p),
            None => break, // no position helps any further
        }
    }
    chosen.sort_unstable();
    chosen
}

/// Number of keys that share their (positions, length) signature with an
/// *earlier* key — the collisions no associated-value search can repair.
///
/// Counting excess keys per group (size − 1) rather than every member of a
/// shared group matters for the greedy selection: on a large training set a
/// single position rarely makes any signature unique (1000 keys over 10
/// digit values leave every signature shared), but it always shrinks the
/// excess. The per-member count plateaus, the greedy concludes no position
/// helps, and training degenerates to the constant `hash = len` — the
/// single-bucket pileup `repro_output.txt` recorded for Gperf.
fn duplicate_signatures(keys: &[&[u8]], positions: &[usize]) -> usize {
    let mut sigs: Vec<Vec<u8>> = keys
        .iter()
        .map(|k| {
            let mut sig: Vec<u8> = positions
                .iter()
                .map(|&p| k.get(p).copied().unwrap_or(0))
                .collect();
            sig.push(k.len() as u8);
            sig.push((k.len() >> 8) as u8);
            sig
        })
        .collect();
    sigs.sort_unstable();
    let mut dups = 0;
    let mut i = 0;
    while i < sigs.len() {
        let mut j = i + 1;
        while j < sigs.len() && sigs[j] == sigs[i] {
            j += 1;
        }
        dups += j - i - 1;
        i = j;
    }
    dups
}

/// Iterative repair of the associated-values table: while two training keys
/// collide, bump the associated value of a character that distinguishes
/// them. Bounded by [`MAX_REPAIR_SWEEPS`]; returns whether the final table
/// is collision-free on the training set.
fn search_asso_values(keys: &[&[u8]], positions: &[usize]) -> (Box<[u32; 256]>, bool) {
    // Scrambled per-character seeds, for two reasons. From an all-zero
    // table the repair is symmetric — every sweep bumps every colliding
    // character by the same step, so the table can stay equal across
    // characters forever, and `len + Σ asso` is then *constant* on a
    // fixed-length format (the single-bucket pileup recorded in
    // repro_output.txt). And an arithmetic progression (`v * c`) makes the
    // sum see only the character *sum*, collapsing the range to a few
    // dozen values. Irregular 13-bit seeds separate distinct character
    // multisets while keeping the hash range tiny, as gperf tables are;
    // keys that *permute* the selected characters still collide — the
    // pathology the paper's evaluation depends on.
    // A single multiply-shift would not do: over consecutive character
    // codes it is affine, which collapses the sums all the same.
    let mut asso = Box::new([0u32; 256]);
    for (v, slot) in asso.iter_mut().enumerate() {
        let mut z = (v as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        *slot = ((z >> 31) as u32) & 0x1FFF;
    }
    if keys.is_empty() || positions.is_empty() {
        return (asso, duplicate_signatures(keys, positions) == 0);
    }
    let hash = |key: &[u8], asso: &[u32; 256]| -> u64 {
        let mut h = key.len() as u64;
        for &p in positions {
            if let Some(&b) = key.get(p) {
                h += u64::from(asso[b as usize]);
            }
        }
        h
    };
    let mut step = 1u32;
    for _sweep in 0..MAX_REPAIR_SWEEPS {
        let mut hashed: Vec<(u64, usize)> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (hash(k, &asso), i))
            .collect();
        hashed.sort_unstable();
        let mut any_collision = false;
        let mut bumped = [false; 256];
        for pair in hashed.windows(2) {
            if pair[0].0 != pair[1].0 {
                continue;
            }
            any_collision = true;
            let (a, b) = (keys[pair[0].1], keys[pair[1].1]);
            // Bump the first selected character where the two keys differ;
            // bump each character value at most once per sweep so the
            // search does not thrash.
            if let Some(&p) = positions
                .iter()
                .find(|&&p| a.get(p) != b.get(p) && b.get(p).is_some())
            {
                let v = b[p] as usize;
                if !bumped[v] {
                    bumped[v] = true;
                    asso[v] = asso[v].wrapping_add(step);
                }
            }
        }
        if !any_collision {
            return (asso, true);
        }
        // Vary the step like gperf's jump parameter to escape cycles.
        step = step % 31 + 2;
    }
    (asso, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_keyword_set_becomes_perfect() {
        // The classic gperf use case: a handful of reserved words.
        let words: [&[u8]; 10] = [
            b"auto",
            b"break",
            b"case",
            b"char",
            b"const",
            b"continue",
            b"default",
            b"do",
            b"double",
            b"else",
        ];
        let h = GperfHash::train(words.iter().copied());
        assert!(h.is_perfect());
        let mut hashes: Vec<u64> = words.iter().map(|w| h.hash_bytes(w)).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), words.len());
    }

    #[test]
    fn hash_values_cluster_in_a_small_range() {
        // gperf hashes are sums of small table entries: the range is tiny
        // compared to 2^64, which is why the paper's Gperf row has terrible
        // uniformity (Table 2).
        let keys: Vec<String> = (0..50).map(|i| format!("{i:04}")).collect();
        let h = GperfHash::train(keys.iter().map(|k| k.as_bytes()));
        let max = keys
            .iter()
            .map(|k| h.hash_bytes(k.as_bytes()))
            .max()
            .unwrap();
        assert!(max < 1 << 20, "gperf range stays small, got {max}");
    }

    #[test]
    fn unseen_permutations_collide() {
        // Per-value associated tables make permuted keys collide: the
        // mechanism behind the paper's 55k gperf collisions.
        let keys: Vec<String> = (0..100).map(|i| format!("{i:06}")).collect();
        let h = GperfHash::train(keys.iter().map(|k| k.as_bytes()));
        assert_eq!(h.hash_bytes(b"120000"), h.hash_bytes(b"210000"));
    }

    #[test]
    fn empty_training_set_is_total() {
        let h = GperfHash::train(std::iter::empty());
        assert_eq!(h.hash_bytes(b"anything"), 8);
    }

    #[test]
    fn positions_are_bounded_and_sorted() {
        let keys: Vec<String> = (0..500).map(|i| format!("key-{i:05}-suffix")).collect();
        let h = GperfHash::train(keys.iter().map(|k| k.as_bytes()));
        assert!(h.positions().len() <= MAX_POSITIONS);
        assert!(h.positions().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn large_random_training_sets_are_not_constant() {
        // Regression: the greedy position selection used to count every
        // member of a shared-signature group, so on 1000 keys no single
        // position ever "reduced duplicates" and it gave up with an empty
        // position list — a constant hash per key length, which is the
        // 9,999-key single-bucket pileup recorded in repro_output.txt.
        let mut state = 0x5EEDu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let keys: Vec<String> = (0..1000)
            .map(|_| {
                (0..11)
                    .map(|_| char::from(b'0' + (next() % 10) as u8))
                    .collect()
            })
            .collect();
        let h = GperfHash::train(keys.iter().map(|k| k.as_bytes()));
        assert!(
            !h.positions().is_empty(),
            "greedy selection must keep making progress"
        );
        let mut hashes: Vec<u64> = keys.iter().map(|k| h.hash_bytes(k.as_bytes())).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert!(
            hashes.len() > 500,
            "training keys should mostly hash apart, got {} distinct of 1000",
            hashes.len()
        );
    }

    #[test]
    fn duplicate_keys_are_tolerated() {
        let h = GperfHash::train([&b"same"[..], b"same", b"other"]);
        assert!(h.is_perfect());
    }
}
