//! The handwritten SSN hash of Figure 4 of the paper.
//!
//! Suggested in the reddit thread where SEPE was discussed: two overlapping
//! eight-byte loads, a four-bit shift to pair up constant and non-constant
//! nibbles, and an addition. The fixed SSN length allows the two loads; the
//! digit range allows the nibble packing; the constant dots vanish into the
//! carry-free regions of the addition. The synthesized **Pext** function
//! generalizes exactly this construction (Figure 12), so this module exists
//! as the human reference point the generator is measured against.

use sepe_core::bits::load_u64_le;
use sepe_core::hash::ByteHash;

/// Figure 4, verbatim: `h = load(ptr) + (load(ptr + 3) << 4)`.
///
/// Expects 11-byte keys in the `ddd-dd-dddd` (or `ddd.dd.dddd`) format;
/// other inputs hash safely but meaninglessly.
///
/// # Examples
///
/// ```
/// use sepe_baselines::handwritten::figure4_ssn_hash;
///
/// assert_ne!(figure4_ssn_hash(b"123-45-6789"), figure4_ssn_hash(b"123-45-6780"));
/// ```
#[must_use]
pub fn figure4_ssn_hash(key: &[u8]) -> u64 {
    let hash1 = load_u64_le(key, 0);
    let hash2 = load_u64_le(key, 3);
    let hash3 = hash2 << 4;
    hash1.wrapping_add(hash3)
}

/// [`figure4_ssn_hash`] as a [`ByteHash`], for use in the experiment
/// driver and containers.
#[derive(Debug, Clone, Copy, Default)]
pub struct Figure4SsnHash;

impl Figure4SsnHash {
    /// Creates the hash.
    #[must_use]
    pub fn new() -> Self {
        Figure4SsnHash
    }
}

// Baselines take the default scalar batch loop: they have no common
// per-key op schedule to interleave, and the benchmark suite uses them
// as the scalar reference.
impl sepe_core::hash::HashBatch for Figure4SsnHash {}

impl ByteHash for Figure4SsnHash {
    #[inline]
    fn hash_bytes(&self, key: &[u8]) -> u64 {
        figure4_ssn_hash(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ssn(i: u64) -> String {
        format!(
            "{:03}-{:02}-{:04}",
            i / 1_000_000,
            (i / 10_000) % 100,
            i % 10_000
        )
    }

    #[test]
    fn injective_on_a_large_ssn_sample() {
        // The figure claims a bijection of 11-byte strings to 8-byte
        // integers; verify injectivity over a large structured sample.
        let mut hashes: Vec<u64> = (0..200_000u64)
            .map(|i| figure4_ssn_hash(ssn(i * 4999).as_bytes()))
            .collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 200_000);
    }

    #[test]
    fn adjacent_ssns_hash_apart() {
        assert_ne!(
            figure4_ssn_hash(b"123-45-6789"),
            figure4_ssn_hash(b"123-45-6790")
        );
        assert_ne!(
            figure4_ssn_hash(b"000-00-0000"),
            figure4_ssn_hash(b"100-00-0000")
        );
    }

    #[test]
    fn works_with_either_separator() {
        // Figure 4's prose uses "xxx.xx.xxxx"; the paper's key format uses
        // dashes. The construction works for both (separators are constant
        // either way), but the two spellings hash differently.
        assert_ne!(
            figure4_ssn_hash(b"123-45-6789"),
            figure4_ssn_hash(b"123.45.6789")
        );
    }

    #[test]
    fn comparable_to_the_synthesized_pext_on_dispersion() {
        use sepe_core::hash::SynthesizedHash;
        use sepe_core::synth::Family;
        let pext = SynthesizedHash::from_regex(r"\d{3}-\d{2}-\d{4}", Family::Pext)
            .expect("ssn regex compiles");
        let keys: Vec<String> = (0..50_000u64).map(|i| ssn(i * 13)).collect();
        let count_distinct = |f: &dyn Fn(&[u8]) -> u64| {
            let mut hs: Vec<u64> = keys.iter().map(|k| f(k.as_bytes())).collect();
            hs.sort_unstable();
            hs.dedup();
            hs.len()
        };
        assert_eq!(count_distinct(&figure4_ssn_hash), keys.len());
        assert_eq!(count_distinct(&|k| pext.hash_bytes(k)), keys.len());
    }
}
