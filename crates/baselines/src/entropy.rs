//! Entropy-learned hashing, after Hentschel, Sirin & Idreos (SIGMOD 2022)
//! — the related work the paper positions itself against (Section 5).
//!
//! Where SEPE *generates code* that skips constant bytes, entropy-learned
//! hashing *constrains an existing hash function* to the high-entropy byte
//! positions of the data: estimate the Shannon entropy of every position
//! from a sample, keep the most informative positions within a byte
//! budget, and hash only those. No code generation, no bit-level analysis
//! — which is exactly the contrast the paper draws ("Hentschel et al. do
//! not generate code for hash functions; they can constrain any well-known
//! hash function to only high entropy bits").
//!
//! Implemented here so the two approaches can be compared head to head on
//! the same workloads.

use sepe_core::hash::{stl_hash_bytes, ByteHash, DEFAULT_STL_SEED};

/// Per-position Shannon entropy (bits) of a sample of keys.
///
/// Positions past a key's end contribute a distinguished "absent" symbol,
/// so length differences carry entropy too.
#[must_use]
pub fn positional_entropy(keys: &[&[u8]]) -> Vec<f64> {
    let max_len = keys.iter().map(|k| k.len()).max().unwrap_or(0);
    let mut out = Vec::with_capacity(max_len);
    for pos in 0..max_len {
        let mut counts = [0u32; 257]; // 256 byte values + "absent"
        for k in keys {
            match k.get(pos) {
                Some(&b) => counts[b as usize] += 1,
                None => counts[256] += 1,
            }
        }
        let n = keys.len() as f64;
        let mut h = 0.0;
        for &c in &counts {
            if c > 0 {
                let p = f64::from(c) / n;
                h -= p * p.log2();
            }
        }
        out.push(h);
    }
    out
}

/// A hash that reads only the most informative byte positions of its keys.
///
/// # Examples
///
/// ```
/// use sepe_baselines::entropy::EntropyLearnedHash;
/// use sepe_core::ByteHash;
///
/// // URL keys: 10 constant bytes, 4 varying ones.
/// let keys: Vec<String> =
///     (0..500).map(|i| format!("/static/v1{:04}", i * 97 % 10_000)).collect();
/// let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_bytes()).collect();
/// let h = EntropyLearnedHash::train(&refs, 4);
/// // Only the 4 digit positions are read.
/// assert_eq!(h.positions(), &[10, 11, 12, 13]);
/// assert_ne!(h.hash_bytes(b"/static/v10001"), h.hash_bytes(b"/static/v10002"));
/// ```
#[derive(Debug, Clone)]
pub struct EntropyLearnedHash {
    /// Selected byte positions, ascending.
    positions: Vec<usize>,
    seed: u64,
}

impl EntropyLearnedHash {
    /// Estimates per-position entropy from `sample` and keeps the
    /// `budget` highest-entropy positions (all positive-entropy positions
    /// if fewer exist).
    ///
    /// # Panics
    ///
    /// Panics if `sample` is empty or `budget` is zero.
    #[must_use]
    pub fn train(sample: &[&[u8]], budget: usize) -> Self {
        assert!(!sample.is_empty(), "need a non-empty sample");
        assert!(budget > 0, "need a positive byte budget");
        let entropies = positional_entropy(sample);
        let mut ranked: Vec<(usize, f64)> = entropies
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, h)| h > 0.0)
            .collect();
        // Highest entropy first; ties broken by position for determinism.
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("entropies are finite")
                .then(a.0.cmp(&b.0))
        });
        let mut positions: Vec<usize> = ranked.into_iter().take(budget).map(|(p, _)| p).collect();
        positions.sort_unstable();
        EntropyLearnedHash {
            positions,
            seed: DEFAULT_STL_SEED,
        }
    }

    /// The byte positions the hash reads, ascending.
    #[must_use]
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }
}

// Baselines take the default scalar batch loop: they have no common
// per-key op schedule to interleave, and the benchmark suite uses them
// as the scalar reference.
impl sepe_core::hash::HashBatch for EntropyLearnedHash {}

impl ByteHash for EntropyLearnedHash {
    fn hash_bytes(&self, key: &[u8]) -> u64 {
        // Gather the informative bytes, then run the general-purpose hash
        // over the (much shorter) gathered buffer — plus the length, so
        // truncated keys do not alias.
        let mut buf = [0u8; 64];
        let mut n = 0usize;
        for &p in &self.positions {
            if n == buf.len() {
                break;
            }
            buf[n] = key.get(p).copied().unwrap_or(0);
            n += 1;
        }
        stl_hash_bytes(&buf[..n], self.seed ^ key.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_keys(n: usize) -> Vec<String> {
        // Multiply by a unit mod 10^6 so every digit position varies.
        (0..n)
            .map(|i| format!("user-{:06}@example.com", i * 997 % 1_000_000))
            .collect()
    }

    #[test]
    fn entropy_is_zero_on_constant_positions() {
        let keys = sample_keys(500);
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_bytes()).collect();
        let e = positional_entropy(&refs);
        // "user-" prefix and "@example.com" suffix are constant.
        for (pos, &h) in e.iter().enumerate().take(5) {
            assert_eq!(h, 0.0, "prefix byte {pos}");
        }
        for (pos, &h) in e.iter().enumerate().skip(11) {
            assert_eq!(h, 0.0, "suffix byte {pos}");
        }
        // Digit positions carry entropy.
        assert!(e[10] > 1.0, "low digit: {}", e[10]);
    }

    #[test]
    fn training_selects_the_digit_positions() {
        let keys = sample_keys(1000);
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_bytes()).collect();
        let h = EntropyLearnedHash::train(&refs, 6);
        assert_eq!(h.positions(), &[5, 6, 7, 8, 9, 10]);
    }

    #[test]
    fn budget_caps_the_positions() {
        let keys = sample_keys(1000);
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_bytes()).collect();
        let h = EntropyLearnedHash::train(&refs, 2);
        assert_eq!(h.positions().len(), 2);
        // The two cheapest-to-distinguish positions are the fast-cycling
        // low digits.
        assert!(h.positions().iter().all(|&p| (5..=10).contains(&p)));
    }

    #[test]
    fn collision_free_when_budget_covers_the_variation() {
        let keys = sample_keys(10_000);
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_bytes()).collect();
        let h = EntropyLearnedHash::train(&refs, 6);
        let mut hashes: Vec<u64> = refs.iter().map(|k| h.hash_bytes(k)).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn under_budget_collides_gracefully() {
        // One informative byte cannot distinguish 1000 keys — but hashing
        // must stay deterministic and total.
        let keys = sample_keys(1000);
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_bytes()).collect();
        let h = EntropyLearnedHash::train(&refs, 1);
        let mut hashes: Vec<u64> = refs.iter().map(|k| h.hash_bytes(k)).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert!(hashes.len() <= 10, "one byte has at most 10 digit values");
    }

    #[test]
    fn variable_length_keys_contribute_length_entropy() {
        let keys: Vec<String> = (0..100)
            .map(|i| {
                if i % 2 == 0 {
                    format!("k{i:03}")
                } else {
                    format!("k{i:03}x")
                }
            })
            .collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_bytes()).collect();
        let e = positional_entropy(&refs);
        assert!(e[4] > 0.9, "absent-vs-'x' position entropy: {}", e[4]);
        // And keys differing only in length hash apart.
        let h = EntropyLearnedHash::train(&refs, 4);
        assert_ne!(h.hash_bytes(b"k000"), h.hash_bytes(b"k000x"));
    }

    #[test]
    #[should_panic(expected = "non-empty sample")]
    fn empty_sample_panics() {
        let _ = EntropyLearnedHash::train(&[], 4);
    }
}
