//! Handwritten per-format hash functions — the paper's **Gpt** baseline.
//!
//! The paper prompted ChatGPT 3.5 once per key format ("produce an optimized
//! hash function for this specific case with an unrolled for loop, the
//! constant characters can be ignored"). This module provides hand-written
//! functions of the same flavor: per-format, unrolled, separator-skipping,
//! value-parsing — including the characteristic weakness the paper reports
//! (Section 4.2: 7857 of Gpt's 7865 collisions come from IPv4 keys, because
//! parsing three-digit octets into bytes aliases values ≥ 256).

use crate::fnv::FnvHash;
use sepe_core::hash::ByteHash;

/// Which key format a [`GptHash`] was "prompted" for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GptFormat {
    /// `ddd-dd-dddd` US Social Security numbers.
    Ssn,
    /// `ddd.ddd.ddd-dd` Brazilian CPF numbers.
    Cpf,
    /// `hh-hh-hh-hh-hh-hh` MAC addresses.
    Mac,
    /// `ddd.ddd.ddd.ddd` zero-padded IPv4 addresses.
    Ipv4,
    /// `hhhh:hhhh:…:hhhh` IPv6 addresses (eight hextets).
    Ipv6,
    /// 100-digit integers.
    Ints,
    /// URL with a constant prefix of the given length and a variable
    /// `[a-z0-9]{20}.html` suffix.
    Url {
        /// Length of the constant prefix to skip.
        prefix_len: usize,
    },
    /// Any other format: falls back to FNV-1a, as a chat model typically
    /// suggests for "generic strings".
    Generic,
}

/// The **Gpt** baseline: a handwritten, format-specific hash.
///
/// # Examples
///
/// ```
/// use sepe_baselines::gpt::{GptFormat, GptHash};
/// use sepe_core::ByteHash;
///
/// let h = GptHash::new(GptFormat::Ssn);
/// // SSNs parse to their 9-digit value: a bijection.
/// assert_eq!(h.hash_bytes(b"123-45-6789"), 123_45_6789);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct GptHash {
    format: GptFormat,
}

#[inline]
fn digit(b: u8) -> u64 {
    u64::from(b.wrapping_sub(b'0'))
}

#[inline]
fn hex(b: u8) -> u64 {
    match b {
        b'0'..=b'9' => u64::from(b - b'0'),
        b'a'..=b'f' => u64::from(b - b'a' + 10),
        b'A'..=b'F' => u64::from(b - b'A' + 10),
        _ => 0,
    }
}

impl GptHash {
    /// Creates the handwritten hash for `format`.
    #[must_use]
    pub fn new(format: GptFormat) -> Self {
        GptHash { format }
    }

    /// The format this hash was written for.
    #[must_use]
    pub fn format(&self) -> GptFormat {
        self.format
    }

    fn hash_ssn(key: &[u8]) -> u64 {
        // Unrolled digit parse, skipping the dashes at 3 and 6.
        digit(key[0]) * 100_000_000
            + digit(key[1]) * 10_000_000
            + digit(key[2]) * 1_000_000
            + digit(key[4]) * 100_000
            + digit(key[5]) * 10_000
            + digit(key[7]) * 1000
            + digit(key[8]) * 100
            + digit(key[9]) * 10
            + digit(key[10])
    }

    fn hash_cpf(key: &[u8]) -> u64 {
        // ddd.ddd.ddd-dd: digits at 0-2, 4-6, 8-10, 12-13.
        let mut h = 0u64;
        for &i in &[0usize, 1, 2, 4, 5, 6, 8, 9, 10, 12, 13] {
            h = h * 10 + digit(key[i]);
        }
        h
    }

    fn hash_mac(key: &[u8]) -> u64 {
        // hh-hh-hh-hh-hh-hh: twelve nibbles, separators at 2,5,8,11,14.
        let mut h = 0u64;
        for group in 0..6 {
            let base = group * 3;
            h = (h << 8) | (hex(key[base]) << 4) | hex(key[base + 1]);
        }
        h
    }

    fn hash_ipv4(key: &[u8]) -> u64 {
        // The paper's reported weakness: each three-digit group parses into
        // one byte, so groups >= 256 alias modulo 256 and distinct keys
        // collide (e.g. "256" vs "000").
        let octet = |i: usize| -> u64 {
            (digit(key[i]) * 100 + digit(key[i + 1]) * 10 + digit(key[i + 2])) & 0xFF
        };
        (octet(0) << 24) | (octet(4) << 16) | (octet(8) << 8) | octet(12)
    }

    fn hash_ipv6(key: &[u8]) -> u64 {
        // hhhh:hhhh:...: eight hextets at stride 5; fold the 128-bit value.
        let mut hi = 0u64;
        let mut lo = 0u64;
        for group in 0..4 {
            let base = group * 5;
            hi = (hi << 16)
                | (hex(key[base]) << 12)
                | (hex(key[base + 1]) << 8)
                | (hex(key[base + 2]) << 4)
                | hex(key[base + 3]);
        }
        for group in 4..8 {
            let base = group * 5;
            lo = (lo << 16)
                | (hex(key[base]) << 12)
                | (hex(key[base + 1]) << 8)
                | (hex(key[base + 2]) << 4)
                | hex(key[base + 3]);
        }
        hi ^ lo.rotate_left(1)
    }

    fn hash_ints(key: &[u8]) -> u64 {
        // Unrolled word loop with a multiply per chunk, the shape a chat
        // model produces for "a 100-character digit string".
        let mut h = 0u64;
        let mut i = 0;
        while i + 8 <= key.len() {
            let w = u64::from_le_bytes(key[i..i + 8].try_into().expect("8 bytes"));
            h = h.wrapping_mul(0x0100_0000_01b3).wrapping_add(w);
            i += 8;
        }
        while i < key.len() {
            h = h.wrapping_mul(31).wrapping_add(u64::from(key[i]));
            i += 1;
        }
        h
    }

    fn hash_url(key: &[u8], prefix_len: usize) -> u64 {
        // Skip the constant prefix, hash the variable suffix polynomially.
        let mut h = 1469_5981_0393_4665_6037u128 as u64;
        for &b in key.get(prefix_len..).unwrap_or(key) {
            h = h.wrapping_mul(31).wrapping_add(u64::from(b));
        }
        h
    }
}

// Baselines take the default scalar batch loop: they have no common
// per-key op schedule to interleave, and the benchmark suite uses them
// as the scalar reference.
impl sepe_core::hash::HashBatch for GptHash {}

impl ByteHash for GptHash {
    fn hash_bytes(&self, key: &[u8]) -> u64 {
        // Every format function assumes well-formed keys; guard the length
        // so malformed input degrades to FNV instead of panicking.
        let expected = match self.format {
            GptFormat::Ssn => 11,
            GptFormat::Cpf => 14,
            GptFormat::Mac => 17,
            GptFormat::Ipv4 => 15,
            GptFormat::Ipv6 => 39,
            GptFormat::Ints | GptFormat::Url { .. } | GptFormat::Generic => 0,
        };
        if expected != 0 && key.len() != expected {
            return FnvHash::new().hash_bytes(key);
        }
        match self.format {
            GptFormat::Ssn => Self::hash_ssn(key),
            GptFormat::Cpf => Self::hash_cpf(key),
            GptFormat::Mac => Self::hash_mac(key),
            GptFormat::Ipv4 => Self::hash_ipv4(key),
            GptFormat::Ipv6 => Self::hash_ipv6(key),
            GptFormat::Ints => Self::hash_ints(key),
            GptFormat::Url { prefix_len } => Self::hash_url(key, prefix_len),
            GptFormat::Generic => FnvHash::new().hash_bytes(key),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssn_is_a_bijection() {
        let h = GptHash::new(GptFormat::Ssn);
        assert_eq!(h.hash_bytes(b"000-00-0000"), 0);
        assert_eq!(h.hash_bytes(b"999-99-9999"), 999_999_999);
        assert_eq!(h.hash_bytes(b"123-45-6789"), 123_456_789);
    }

    #[test]
    fn cpf_parses_all_eleven_digits() {
        let h = GptHash::new(GptFormat::Cpf);
        assert_eq!(h.hash_bytes(b"123.456.789-01"), 12_345_678_901);
    }

    #[test]
    fn mac_is_a_48_bit_bijection() {
        let h = GptHash::new(GptFormat::Mac);
        assert_eq!(h.hash_bytes(b"00-00-00-00-00-01"), 1);
        assert_eq!(h.hash_bytes(b"ff-ff-ff-ff-ff-ff"), 0xFFFF_FFFF_FFFF);
        assert_eq!(h.hash_bytes(b"0A-1b-2C-3d-4E-5f"), 0x0A1B_2C3D_4E5F);
    }

    #[test]
    fn ipv4_collides_on_aliasing_octets() {
        // The documented weakness: 256 aliases 000.
        let h = GptHash::new(GptFormat::Ipv4);
        assert_eq!(
            h.hash_bytes(b"256.001.001.001"),
            h.hash_bytes(b"000.001.001.001")
        );
        assert_ne!(
            h.hash_bytes(b"001.001.001.001"),
            h.hash_bytes(b"001.001.001.002")
        );
    }

    #[test]
    fn ipv6_distinguishes_hextets() {
        let h = GptHash::new(GptFormat::Ipv6);
        let a = h.hash_bytes(b"2001:0db8:0000:0000:0000:0000:0000:0001");
        let b = h.hash_bytes(b"2001:0db8:0000:0000:0000:0000:0000:0002");
        assert_ne!(a, b);
    }

    #[test]
    fn malformed_keys_degrade_to_fnv() {
        let h = GptHash::new(GptFormat::Ssn);
        assert_eq!(h.hash_bytes(b"short"), FnvHash::new().hash_bytes(b"short"));
    }

    #[test]
    fn url_skips_the_constant_prefix() {
        let h = GptHash::new(GptFormat::Url { prefix_len: 10 });
        assert_eq!(
            h.hash_bytes(b"http://a/xSUFFIX"),
            h.hash_bytes(b"http://b/ySUFFIX")
        );
    }

    #[test]
    fn ints_hashes_100_digit_keys_apart() {
        let h = GptHash::new(GptFormat::Ints);
        let mut hashes: Vec<u64> = (0..5000u64)
            .map(|i| h.hash_bytes(format!("{:0100}", i * 31).as_bytes()))
            .collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 5000);
    }
}
