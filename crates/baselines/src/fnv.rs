//! 64-bit FNV-1a, as implemented by libstdc++'s `_Fnv_hash_bytes` — the
//! paper's **FNV** baseline.

use sepe_core::hash::ByteHash;

/// The FNV-1a offset basis for 64-bit hashes.
pub const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// The FNV-1a prime for 64-bit hashes.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a: one xor and one multiply per input byte.
///
/// # Examples
///
/// ```
/// use sepe_baselines::FnvHash;
/// use sepe_core::ByteHash;
///
/// // Well-known FNV-1a test vector.
/// assert_eq!(FnvHash::new().hash_bytes(b""), 0xcbf29ce484222325);
/// assert_eq!(FnvHash::new().hash_bytes(b"a"), 0xaf63dc4c8601ec8c);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FnvHash {
    basis: u64,
}

impl FnvHash {
    /// FNV-1a with the standard offset basis.
    #[must_use]
    pub fn new() -> Self {
        FnvHash {
            basis: FNV_OFFSET_BASIS,
        }
    }

    /// FNV-1a with a caller-chosen basis (libstdc++ mixes the seed here).
    #[must_use]
    pub fn with_basis(basis: u64) -> Self {
        FnvHash { basis }
    }
}

impl Default for FnvHash {
    fn default() -> Self {
        FnvHash::new()
    }
}

// Baselines take the default scalar batch loop: they have no common
// per-key op schedule to interleave, and the benchmark suite uses them
// as the scalar reference.
impl sepe_core::hash::HashBatch for FnvHash {}

impl ByteHash for FnvHash {
    #[inline]
    fn hash_bytes(&self, key: &[u8]) -> u64 {
        let mut hash = self.basis;
        for &b in key {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // From the FNV reference test suite (fnv64a).
        let h = FnvHash::new();
        assert_eq!(h.hash_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(h.hash_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(h.hash_bytes(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn order_sensitive() {
        let h = FnvHash::new();
        assert_ne!(h.hash_bytes(b"ab"), h.hash_bytes(b"ba"));
    }

    #[test]
    fn basis_acts_as_seed() {
        assert_ne!(
            FnvHash::with_basis(1).hash_bytes(b"x"),
            FnvHash::with_basis(2).hash_bytes(b"x")
        );
    }
}
