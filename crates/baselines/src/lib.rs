//! # sepe-baselines
//!
//! The baseline hash functions of the SEPE evaluation (Section 4 of the
//! paper), implemented from scratch:
//!
//! * [`StlHash`] — the murmur-derived `_Hash_bytes` of libstdc++ (Figure 1);
//! * [`FnvHash`] — the 64-bit FNV-1a of libstdc++ (`_Fnv_hash_bytes`);
//! * [`CityHash`] — Google's CityHash64 for string keys;
//! * [`AbseilHash`] — the 128-bit-multiply mixer in the style of Abseil's
//!   low-level hash;
//! * [`GperfHash`] — a gperf-style perfect-hash function trained on example
//!   keys (keyword-position selection + associated-values search);
//! * [`SipHash13`] — a secret-keyed SipHash-1-3, the HashDoS-resistant
//!   rung of the container escalation ladder (not a paper baseline);
//! * [`gpt`] — handwritten per-format hashes standing in for the paper's
//!   ChatGPT-generated baselines.
//!
//! Every type implements [`sepe_core::ByteHash`], the interface the
//! experiment driver measures.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod abseil;
pub mod city;
pub mod entropy;
pub mod fnv;
pub mod gperf;
pub mod gpt;
pub mod handwritten;
pub mod siphash;
pub mod stl;

pub use abseil::AbseilHash;
pub use city::CityHash;
pub use entropy::EntropyLearnedHash;
pub use fnv::FnvHash;
pub use gperf::GperfHash;
pub use gpt::GptHash;
pub use siphash::SipHash13;
pub use stl::StlHash;
