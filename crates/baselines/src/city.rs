//! CityHash64 — Google's string hash, the paper's **City** baseline.
//!
//! Reimplemented from the public-domain CityHash v1.1 sources
//! (`city.cc`). The structure — per-length specializations for 0–16, 17–32,
//! 33–64 bytes and a 64-byte-chunk main loop with two 128-bit lanes — is
//! preserved; correctness is checked through structural and statistical
//! tests (the original publishes no official test vectors).

use sepe_core::hash::ByteHash;

const K0: u64 = 0xc3a5_c85c_97cb_3127;
const K1: u64 = 0xb492_b66f_be98_f273;
const K2: u64 = 0x9ae1_6a3b_2f90_404f;
const K_MUL: u64 = 0x9ddf_ea08_eb38_2d69;

#[inline]
fn fetch64(s: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(s[i..i + 8].try_into().expect("8 bytes in range"))
}

#[inline]
fn fetch32(s: &[u8], i: usize) -> u64 {
    u64::from(u32::from_le_bytes(
        s[i..i + 4].try_into().expect("4 bytes in range"),
    ))
}

#[inline]
fn rotate(v: u64, shift: u32) -> u64 {
    v.rotate_right(shift)
}

#[inline]
fn shift_mix(v: u64) -> u64 {
    v ^ (v >> 47)
}

#[inline]
fn hash128_to_64(lo: u64, hi: u64) -> u64 {
    let mut a = (lo ^ hi).wrapping_mul(K_MUL);
    a ^= a >> 47;
    let mut b = (hi ^ a).wrapping_mul(K_MUL);
    b ^= b >> 47;
    b.wrapping_mul(K_MUL)
}

#[inline]
fn hash_len_16(u: u64, v: u64) -> u64 {
    hash128_to_64(u, v)
}

#[inline]
fn hash_len_16_mul(u: u64, v: u64, mul: u64) -> u64 {
    let mut a = (u ^ v).wrapping_mul(mul);
    a ^= a >> 47;
    let mut b = (v ^ a).wrapping_mul(mul);
    b ^= b >> 47;
    b.wrapping_mul(mul)
}

fn hash_len_0_to_16(s: &[u8]) -> u64 {
    let len = s.len();
    if len >= 8 {
        let mul = K2.wrapping_add(len as u64 * 2);
        let a = fetch64(s, 0).wrapping_add(K2);
        let b = fetch64(s, len - 8);
        let c = rotate(b, 37).wrapping_mul(mul).wrapping_add(a);
        let d = rotate(a, 25).wrapping_add(b).wrapping_mul(mul);
        return hash_len_16_mul(c, d, mul);
    }
    if len >= 4 {
        let mul = K2.wrapping_add(len as u64 * 2);
        let a = fetch32(s, 0);
        return hash_len_16_mul((len as u64).wrapping_add(a << 3), fetch32(s, len - 4), mul);
    }
    if len > 0 {
        let a = u64::from(s[0]);
        let b = u64::from(s[len >> 1]);
        let c = u64::from(s[len - 1]);
        let y = a.wrapping_add(b << 8);
        let z = (len as u64).wrapping_add(c << 2);
        return shift_mix(y.wrapping_mul(K2) ^ z.wrapping_mul(K0)).wrapping_mul(K2);
    }
    K2
}

fn hash_len_17_to_32(s: &[u8]) -> u64 {
    let len = s.len();
    let mul = K2.wrapping_add(len as u64 * 2);
    let a = fetch64(s, 0).wrapping_mul(K1);
    let b = fetch64(s, 8);
    let c = fetch64(s, len - 8).wrapping_mul(mul);
    let d = fetch64(s, len - 16).wrapping_mul(K2);
    hash_len_16_mul(
        rotate(a.wrapping_add(b), 43)
            .wrapping_add(rotate(c, 30))
            .wrapping_add(d),
        a.wrapping_add(rotate(b.wrapping_add(K2), 18))
            .wrapping_add(c),
        mul,
    )
}

fn hash_len_33_to_64(s: &[u8]) -> u64 {
    let len = s.len();
    let mul = K2.wrapping_add(len as u64 * 2);
    let a = fetch64(s, 0).wrapping_mul(K2);
    let b = fetch64(s, 8);
    let c = fetch64(s, len - 24);
    let d = fetch64(s, len - 32);
    let e = fetch64(s, 16).wrapping_mul(K2);
    let f = fetch64(s, 24).wrapping_mul(9);
    let g = fetch64(s, len - 8);
    let h = fetch64(s, len - 16).wrapping_mul(mul);

    let u =
        rotate(a.wrapping_add(g), 43).wrapping_add(rotate(b, 30).wrapping_add(c).wrapping_mul(9));
    let v = (a.wrapping_add(g) ^ d).wrapping_add(f).wrapping_add(1);
    let w = (u.wrapping_add(v).wrapping_mul(mul))
        .swap_bytes()
        .wrapping_add(h);
    let x = rotate(e.wrapping_add(f), 42).wrapping_add(c);
    let y = (v.wrapping_add(w).wrapping_mul(mul))
        .swap_bytes()
        .wrapping_add(g)
        .wrapping_mul(mul);
    let z = e.wrapping_add(f).wrapping_add(c);
    let a2 = (x.wrapping_add(z).wrapping_mul(mul).wrapping_add(y))
        .swap_bytes()
        .wrapping_add(b);
    let b2 = shift_mix(
        z.wrapping_add(a2)
            .wrapping_mul(mul)
            .wrapping_add(d)
            .wrapping_add(h),
    )
    .wrapping_mul(mul);
    b2.wrapping_add(x)
}

#[inline]
fn weak_hash_len_32_with_seeds_raw(
    w: u64,
    x: u64,
    y: u64,
    z: u64,
    mut a: u64,
    mut b: u64,
) -> (u64, u64) {
    a = a.wrapping_add(w);
    b = rotate(b.wrapping_add(a).wrapping_add(z), 21);
    let c = a;
    a = a.wrapping_add(x);
    a = a.wrapping_add(y);
    b = b.wrapping_add(rotate(a, 44));
    (a.wrapping_add(z), b.wrapping_add(c))
}

#[inline]
fn weak_hash_len_32_with_seeds(s: &[u8], i: usize, a: u64, b: u64) -> (u64, u64) {
    weak_hash_len_32_with_seeds_raw(
        fetch64(s, i),
        fetch64(s, i + 8),
        fetch64(s, i + 16),
        fetch64(s, i + 24),
        a,
        b,
    )
}

/// Computes CityHash64 over `s`.
#[must_use]
pub fn city_hash_64(s: &[u8]) -> u64 {
    let len = s.len();
    if len <= 16 {
        return hash_len_0_to_16(s);
    }
    if len <= 32 {
        return hash_len_17_to_32(s);
    }
    if len <= 64 {
        return hash_len_33_to_64(s);
    }

    // For strings over 64 bytes: hash the last 64 bytes into the seeds, then
    // walk 64-byte chunks.
    let mut x = fetch64(s, len - 40);
    let mut y = fetch64(s, len - 16).wrapping_add(fetch64(s, len - 56));
    let mut z = hash_len_16(
        fetch64(s, len - 48).wrapping_add(len as u64),
        fetch64(s, len - 24),
    );
    let mut v = weak_hash_len_32_with_seeds(s, len - 64, len as u64, z);
    let mut w = weak_hash_len_32_with_seeds(s, len - 32, y.wrapping_add(K1), x);
    x = x.wrapping_mul(K1).wrapping_add(fetch64(s, 0));

    let mut remaining = (len - 1) & !63;
    let mut pos = 0usize;
    loop {
        x = rotate(
            x.wrapping_add(y)
                .wrapping_add(v.0)
                .wrapping_add(fetch64(s, pos + 8)),
            37,
        )
        .wrapping_mul(K1);
        y = rotate(y.wrapping_add(v.1).wrapping_add(fetch64(s, pos + 48)), 42).wrapping_mul(K1);
        x ^= w.1;
        y = y.wrapping_add(v.0).wrapping_add(fetch64(s, pos + 40));
        z = rotate(z.wrapping_add(w.0), 33).wrapping_mul(K1);
        v = weak_hash_len_32_with_seeds(s, pos, v.1.wrapping_mul(K1), x.wrapping_add(w.0));
        w = weak_hash_len_32_with_seeds(
            s,
            pos + 32,
            z.wrapping_add(w.1),
            y.wrapping_add(fetch64(s, pos + 16)),
        );
        std::mem::swap(&mut z, &mut x);
        pos += 64;
        remaining -= 64;
        if remaining == 0 {
            break;
        }
    }
    hash_len_16(
        hash_len_16(v.0, w.0)
            .wrapping_add(shift_mix(y).wrapping_mul(K1))
            .wrapping_add(z),
        hash_len_16(v.1, w.1).wrapping_add(x),
    )
}

/// Google's CityHash64 — the paper's **City** baseline.
///
/// # Examples
///
/// ```
/// use sepe_baselines::CityHash;
/// use sepe_core::ByteHash;
///
/// let h = CityHash::new();
/// assert_ne!(h.hash_bytes(b"hello"), h.hash_bytes(b"world"));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CityHash;

impl CityHash {
    /// Creates the hash (CityHash64 is unseeded).
    #[must_use]
    pub fn new() -> Self {
        CityHash
    }
}

// Baselines take the default scalar batch loop: they have no common
// per-key op schedule to interleave, and the benchmark suite uses them
// as the scalar reference.
impl sepe_core::hash::HashBatch for CityHash {}

impl ByteHash for CityHash {
    #[inline]
    fn hash_bytes(&self, key: &[u8]) -> u64 {
        city_hash_64(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_string_hashes_to_k2_finalization() {
        assert_eq!(city_hash_64(b""), K2);
    }

    #[test]
    fn every_length_bucket_is_exercised_and_injective_on_prefixes() {
        let data: Vec<u8> = (0..200u16).map(|i| (i * 131 % 251) as u8).collect();
        let mut seen = std::collections::BTreeSet::new();
        for n in 0..=data.len() {
            seen.insert(city_hash_64(&data[..n]));
        }
        assert_eq!(seen.len(), data.len() + 1);
    }

    #[test]
    fn single_bit_flips_change_the_hash() {
        for len in [1usize, 5, 9, 17, 33, 65, 130] {
            let base = vec![0x5Au8; len];
            let h0 = city_hash_64(&base);
            for i in 0..len {
                let mut k = base.clone();
                k[i] ^= 1;
                assert_ne!(city_hash_64(&k), h0, "len {len}, byte {i}");
            }
        }
    }

    #[test]
    fn no_collisions_on_structured_keys() {
        let mut hashes: Vec<u64> = (0..20_000u32)
            .map(|i| city_hash_64(format!("{i:020}").as_bytes()))
            .collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 20_000);
    }

    #[test]
    fn output_bits_look_balanced() {
        // Each output bit should be ~50% over many inputs.
        let n = 4000u32;
        let mut ones = [0u32; 64];
        for i in 0..n {
            let h = city_hash_64(format!("key-{i}").as_bytes());
            for (b, slot) in ones.iter_mut().enumerate() {
                *slot += ((h >> b) & 1) as u32;
            }
        }
        for (b, &c) in ones.iter().enumerate() {
            let frac = f64::from(c) / f64::from(n);
            assert!((0.43..=0.57).contains(&frac), "bit {b} frac {frac}");
        }
    }
}
