//! A 128-bit-multiply mixer in the style of Abseil's low-level hash — the
//! paper's **Abseil** baseline.
//!
//! Abseil's `LowLevelHash` (wyhash-derived) folds 16-byte chunks through a
//! full 64×64→128 multiplication whose halves are xor-ed together. This
//! reimplementation keeps that structure: a salted seed, a 64-byte wide
//! loop with four independent lanes, a 16-byte loop, a tail gather, and a
//! final length-salted mix.

use sepe_core::hash::ByteHash;

/// The salt constants Abseil uses (first 64 bits of π, e, etc. — the same
/// values appear in `absl/hash/internal/low_level_hash.cc`).
pub const SALT: [u64; 5] = [
    0x243f_6a88_85a3_08d3,
    0x1319_8a2e_0370_7344,
    0xa409_3822_299f_31d0,
    0x082e_fa98_ec4e_6c89,
    0x4528_21e6_38d0_1377,
];

/// Multiplies to 128 bits and xors the halves — the core wyhash mix.
#[inline]
#[must_use]
pub fn mix(a: u64, b: u64) -> u64 {
    let wide = u128::from(a).wrapping_mul(u128::from(b));
    (wide as u64) ^ ((wide >> 64) as u64)
}

#[inline]
fn fetch64(s: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(s[i..i + 8].try_into().expect("8 bytes in range"))
}

#[inline]
fn fetch32(s: &[u8], i: usize) -> u64 {
    u64::from(u32::from_le_bytes(
        s[i..i + 4].try_into().expect("4 bytes in range"),
    ))
}

/// Computes the low-level hash of `data` under `seed`.
#[must_use]
pub fn low_level_hash(data: &[u8], seed: u64) -> u64 {
    let starting_length = data.len() as u64;
    let mut state = seed ^ SALT[0];
    let mut s = data;

    if s.len() > 64 {
        // Four-lane wide loop, 64 bytes per iteration.
        let mut duplicated = state;
        while s.len() > 64 {
            let a = fetch64(s, 0);
            let b = fetch64(s, 8);
            let c = fetch64(s, 16);
            let d = fetch64(s, 24);
            let e = fetch64(s, 32);
            let f = fetch64(s, 40);
            let g = fetch64(s, 48);
            let h = fetch64(s, 56);
            let cs0 = mix(a ^ SALT[1], b ^ state);
            let cs1 = mix(c ^ SALT[2], d ^ state);
            state = cs0 ^ cs1;
            let ds0 = mix(e ^ SALT[3], f ^ duplicated);
            let ds1 = mix(g ^ SALT[4], h ^ duplicated);
            duplicated = ds0 ^ ds1;
            s = &s[64..];
        }
        state ^= duplicated;
    }

    while s.len() > 16 {
        let a = fetch64(s, 0);
        let b = fetch64(s, 8);
        state = mix(a ^ SALT[1], b ^ state);
        s = &s[16..];
    }

    // Tail gather: up to 16 remaining bytes into two lanes.
    let (a, b) = match s.len() {
        0 => (0, 0),
        1..=3 => {
            // Replicated edge bytes, as Abseil does for tiny tails.
            let lo = u64::from(s[0]);
            let mid = u64::from(s[s.len() / 2]);
            let hi = u64::from(s[s.len() - 1]);
            ((lo << 16) | (mid << 8) | hi, 0)
        }
        4..=7 => (fetch32(s, 0), fetch32(s, s.len() - 4)),
        8..=15 => (fetch64(s, 0), fetch64(s, s.len() - 8)),
        _ => (fetch64(s, 0), fetch64(s, 8)),
    };

    let w = mix(a ^ SALT[1], b ^ state);
    let z = SALT[1] ^ starting_length;
    mix(w, z)
}

/// The **Abseil** baseline hash.
///
/// # Examples
///
/// ```
/// use sepe_baselines::AbseilHash;
/// use sepe_core::ByteHash;
///
/// let h = AbseilHash::new();
/// assert_ne!(h.hash_bytes(b"a"), h.hash_bytes(b"b"));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AbseilHash {
    seed: u64,
}

impl AbseilHash {
    /// The hash with seed zero (Abseil seeds per-process; experiments need
    /// determinism).
    #[must_use]
    pub fn new() -> Self {
        AbseilHash { seed: 0 }
    }

    /// The hash with a caller-chosen seed.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        AbseilHash { seed }
    }
}

impl Default for AbseilHash {
    fn default() -> Self {
        AbseilHash::new()
    }
}

// Baselines take the default scalar batch loop: they have no common
// per-key op schedule to interleave, and the benchmark suite uses them
// as the scalar reference.
impl sepe_core::hash::HashBatch for AbseilHash {}

impl ByteHash for AbseilHash {
    #[inline]
    fn hash_bytes(&self, key: &[u8]) -> u64 {
        low_level_hash(key, self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_not_commutative_in_effect() {
        assert_ne!(mix(3, SALT[1]), mix(SALT[1] ^ 1, 3));
    }

    #[test]
    fn all_tail_lengths_hash_apart() {
        let data: Vec<u8> = (0..130u8).collect();
        let mut seen = std::collections::BTreeSet::new();
        for n in 0..=data.len() {
            seen.insert(low_level_hash(&data[..n], 0));
        }
        assert_eq!(seen.len(), data.len() + 1);
    }

    #[test]
    fn seed_matters() {
        assert_ne!(low_level_hash(b"key", 1), low_level_hash(b"key", 2));
    }

    #[test]
    fn no_collisions_on_structured_keys() {
        let mut hashes: Vec<u64> = (0..20_000u32)
            .map(|i| low_level_hash(format!("{i:011}").as_bytes(), 0))
            .collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 20_000);
    }

    #[test]
    fn output_bits_look_balanced() {
        let n = 4000u32;
        let mut ones = [0u32; 64];
        for i in 0..n {
            let h = low_level_hash(format!("key-{i}").as_bytes(), 0);
            for (b, slot) in ones.iter_mut().enumerate() {
                *slot += ((h >> b) & 1) as u32;
            }
        }
        for (b, &c) in ones.iter().enumerate() {
            let frac = f64::from(c) / f64::from(n);
            assert!((0.43..=0.57).contains(&frac), "bit {b} frac {frac}");
        }
    }
}
