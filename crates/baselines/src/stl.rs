//! The libstdc++ default string hash (Figure 1 of the paper).

use sepe_core::hash::{stl_hash_bytes, ByteHash, DEFAULT_STL_SEED};

/// The murmur-derived hash used by `std::hash<std::string>` in libstdc++ —
/// the paper's **STL** baseline. The port itself lives in
/// [`sepe_core::hash::stl_hash_bytes`] because SEPE uses it as the fallback
/// for sub-8-byte keys.
///
/// # Examples
///
/// ```
/// use sepe_baselines::StlHash;
/// use sepe_core::ByteHash;
///
/// let h = StlHash::new();
/// assert_ne!(h.hash_bytes(b"abc"), h.hash_bytes(b"abd"));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct StlHash {
    seed: u64,
}

impl StlHash {
    /// The hash with libstdc++'s default seed (`0xc70f6907`).
    #[must_use]
    pub fn new() -> Self {
        StlHash {
            seed: DEFAULT_STL_SEED,
        }
    }

    /// The hash with a caller-chosen seed.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        StlHash { seed }
    }
}

impl Default for StlHash {
    fn default() -> Self {
        StlHash::new()
    }
}

// Baselines take the default scalar batch loop: they have no common
// per-key op schedule to interleave, and the benchmark suite uses them
// as the scalar reference.
impl sepe_core::hash::HashBatch for StlHash {}

impl ByteHash for StlHash {
    #[inline]
    fn hash_bytes(&self, key: &[u8]) -> u64 {
        stl_hash_bytes(key, self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_and_new_agree() {
        assert_eq!(
            StlHash::new().hash_bytes(b"key"),
            StlHash::default().hash_bytes(b"key")
        );
    }

    #[test]
    fn all_lengths_hash() {
        let h = StlHash::new();
        let data = b"abcdefghijklmnopqrstuvwxyz";
        let mut seen = std::collections::BTreeSet::new();
        for n in 0..=data.len() {
            seen.insert(h.hash_bytes(&data[..n]));
        }
        assert_eq!(seen.len(), data.len() + 1, "prefixes must hash apart");
    }
}
