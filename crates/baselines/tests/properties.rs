//! Property tests for the baseline hash functions: determinism, input
//! sensitivity and absence of trivial structure.

use proptest::collection::vec;
use proptest::prelude::*;
use sepe_baselines::{AbseilHash, CityHash, FnvHash, StlHash};
use sepe_core::ByteHash;

fn all_baselines() -> Vec<(&'static str, Box<dyn ByteHash>)> {
    vec![
        ("stl", Box::new(StlHash::new())),
        ("fnv", Box::new(FnvHash::new())),
        ("city", Box::new(CityHash::new())),
        ("abseil", Box::new(AbseilHash::new())),
    ]
}

proptest! {
    #[test]
    fn deterministic_on_arbitrary_input(key in vec(any::<u8>(), 0..200)) {
        for (name, h) in all_baselines() {
            prop_assert_eq!(h.hash_bytes(&key), h.hash_bytes(&key), "{}", name);
        }
    }

    #[test]
    fn single_byte_change_changes_the_hash(
        key in vec(any::<u8>(), 1..120),
        pos_seed in any::<usize>(),
        delta in 1u8..=255
    ) {
        let pos = pos_seed % key.len();
        let mut other = key.clone();
        other[pos] ^= delta;
        for (name, h) in all_baselines() {
            prop_assert_ne!(
                h.hash_bytes(&key),
                h.hash_bytes(&other),
                "{} ignored byte {} of {:?}",
                name,
                pos,
                key
            );
        }
    }

    #[test]
    fn length_extension_changes_the_hash(
        key in vec(any::<u8>(), 0..100),
        extra in any::<u8>()
    ) {
        let mut longer = key.clone();
        longer.push(extra);
        for (name, h) in all_baselines() {
            prop_assert_ne!(h.hash_bytes(&key), h.hash_bytes(&longer), "{}", name);
        }
    }

    #[test]
    fn concatenation_order_matters(
        a in vec(any::<u8>(), 1..40),
        b in vec(any::<u8>(), 1..40)
    ) {
        prop_assume!(a != b);
        let mut ab = a.clone();
        ab.extend_from_slice(&b);
        let mut ba = b.clone();
        ba.extend_from_slice(&a);
        prop_assume!(ab != ba);
        for (name, h) in all_baselines() {
            prop_assert_ne!(h.hash_bytes(&ab), h.hash_bytes(&ba), "{}", name);
        }
    }

    #[test]
    fn gperf_is_total_on_arbitrary_probes(
        training in vec(vec(any::<u8>(), 1..20), 1..30),
        probe in vec(any::<u8>(), 0..40)
    ) {
        let refs: Vec<&[u8]> = training.iter().map(Vec::as_slice).collect();
        let g = sepe_baselines::GperfHash::train(refs.iter().copied());
        // Never panics, deterministic.
        prop_assert_eq!(g.hash_bytes(&probe), g.hash_bytes(&probe));
    }

    #[test]
    fn gpt_hashes_are_total_for_every_format(
        probe in vec(any::<u8>(), 0..60)
    ) {
        use sepe_baselines::gpt::{GptFormat, GptHash};
        for format in [
            GptFormat::Ssn,
            GptFormat::Cpf,
            GptFormat::Mac,
            GptFormat::Ipv4,
            GptFormat::Ipv6,
            GptFormat::Ints,
            GptFormat::Url { prefix_len: 10 },
            GptFormat::Generic,
        ] {
            let h = GptHash::new(format);
            prop_assert_eq!(h.hash_bytes(&probe), h.hash_bytes(&probe));
        }
    }
}
