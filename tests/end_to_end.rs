//! Cross-crate integration: example keys → inferred format → synthesized
//! plan → hash function → bucketed container, for every key format and
//! family of the evaluation.

use sepe::containers::{UnorderedMap, UnorderedMultiSet, UnorderedSet};
use sepe::core::hash::{ByteHash, SynthesizedHash};
use sepe::core::infer::infer_pattern;
use sepe::core::regex::render::render;
use sepe::core::regex::Regex;
use sepe::core::synth::Family;
use sepe::keygen::{Distribution, KeyFormat, KeySampler};

#[test]
fn examples_to_container_for_every_format_and_family() {
    for format in KeyFormat::EVALUATED {
        let examples = format.good_examples();
        let refs: Vec<&[u8]> = examples.iter().map(String::as_bytes).collect();
        let pattern = infer_pattern(refs.iter().copied()).expect("examples exist");

        // Every materialized key matches the inferred pattern.
        for idx in [0u128, 9, 123_456] {
            let key = format.materialize(idx);
            assert!(pattern.matches(key.as_bytes()), "{format:?}: {key:?}");
        }

        for family in Family::ALL {
            let hash = SynthesizedHash::from_pattern(&pattern, family);
            let mut map = UnorderedMap::with_hasher(hash);
            let mut sampler = KeySampler::new(format, Distribution::Uniform, 3);
            let keys = sampler.distinct_pool(500);
            for (i, k) in keys.iter().enumerate() {
                map.insert(k.clone(), i);
            }
            assert_eq!(map.len(), 500, "{format:?} {family}");
            for (i, k) in keys.iter().enumerate() {
                assert_eq!(map.get(k), Some(&i), "{format:?} {family} lost {k:?}");
            }
            for k in &keys {
                assert!(map.remove(k).is_some());
            }
            assert!(map.is_empty());
        }
    }
}

#[test]
fn rendered_regex_reproduces_the_same_hash_function() {
    // infer -> render -> compile must yield the same plan as infer alone.
    for format in KeyFormat::EVALUATED {
        let examples = format.good_examples();
        let refs: Vec<&[u8]> = examples.iter().map(String::as_bytes).collect();
        let pattern = infer_pattern(refs.iter().copied()).expect("examples exist");
        let reparsed = Regex::compile(&render(&pattern)).expect("render is parseable");
        for family in Family::ALL {
            let direct = SynthesizedHash::from_pattern(&pattern, family);
            let via_regex = SynthesizedHash::from_pattern(&reparsed, family);
            assert_eq!(direct.plan(), via_regex.plan(), "{format:?} {family}");
        }
    }
}

#[test]
fn sets_and_multisets_work_with_synthesized_hashes() {
    let hash = SynthesizedHash::from_regex(&KeyFormat::Mac.regex(), Family::OffXor)
        .expect("mac regex compiles");
    let mut set = UnorderedSet::with_hasher(hash.clone());
    let mut multi = UnorderedMultiSet::with_hasher(hash);
    let mut sampler = KeySampler::new(KeyFormat::Mac, Distribution::Uniform, 17);
    let keys = sampler.distinct_pool(1000);
    for k in &keys {
        assert!(set.insert(k.clone()));
        multi.insert(k.clone());
        multi.insert(k.clone());
    }
    assert_eq!(set.len(), 1000);
    assert_eq!(multi.len(), 2000);
    for k in &keys {
        assert!(set.contains(k));
        assert_eq!(multi.count(k), 2);
    }
}

#[test]
fn all_families_agree_on_key_identity() {
    // Hashing is deterministic and equal keys hash equal across clones.
    let regex = KeyFormat::Ipv6.regex();
    for family in Family::ALL {
        let a = SynthesizedHash::from_regex(&regex, family).expect("regex compiles");
        let b = a.clone();
        let mut sampler = KeySampler::new(KeyFormat::Ipv6, Distribution::Normal, 23);
        for _ in 0..200 {
            let k = sampler.next_key();
            assert_eq!(a.hash_bytes(k.as_bytes()), b.hash_bytes(k.as_bytes()));
        }
    }
}

#[test]
fn variable_length_pipeline_works() {
    // Mixed-length keys: inference, synthesis and hashing cooperate.
    let keys: [&[u8]; 4] = [
        b"GET /index",
        b"GET /index?user=12345678",
        b"GET /inbox",
        b"GET /inbox?user=87654321",
    ];
    let pattern = infer_pattern(keys.iter().copied()).expect("non-empty");
    assert!(!pattern.is_fixed_len());
    for family in Family::ALL {
        let hash = SynthesizedHash::from_pattern(&pattern, family);
        let hashes: Vec<u64> = keys.iter().map(|k| hash.hash_bytes(k)).collect();
        let mut dedup = hashes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len(), "{family} collided on {hashes:?}");
    }
}
