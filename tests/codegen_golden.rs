//! Golden tests: the emitted source for the paper's flagship examples is
//! pinned verbatim, so codegen changes are always a conscious decision.

use sepe::core::codegen::{emit, Language};
use sepe::core::regex::Regex;
use sepe::core::synth::{synthesize, Family};

fn emit_for(regex: &str, family: Family, lang: Language, name: &str) -> String {
    let pattern = Regex::compile(regex).expect("golden regex compiles");
    let plan = synthesize(&pattern, family);
    emit(&plan, family, lang, name)
}

#[test]
fn ipv4_offxor_cpp_matches_figure_5() {
    let code = emit_for(
        r"(([0-9]{3})\.){3}[0-9]{3}",
        Family::OffXor,
        Language::Cpp,
        "synthesizedOffXorHash",
    );
    let expected = "\
// Synthesized by sepe-rs: OffXor hash.
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

static inline std::uint64_t load_u64_le(const char* p) {
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

// Fixed key length: 15 bytes; 2 fully unrolled load(s).
struct synthesizedOffXorHash {
    std::size_t operator()(const std::string& key) const {
        const char* ptr = key.c_str();
        const std::uint64_t h0 = load_u64_le(ptr + 0);
        const std::uint64_t h1w = load_u64_le(ptr + 7);
        const std::uint64_t h1 = (h1w << 4) | (h1w >> 60);
        return h0 ^ h1;
    }
};
";
    assert_eq!(code, expected);
}

#[test]
fn ssn_pext_cpp_matches_figure_12_masks() {
    let code = emit_for(
        r"\d{3}\.\d{2}\.\d{4}",
        Family::Pext,
        Language::Cpp,
        "SsnPextHash",
    );
    let expected = "\
// Synthesized by sepe-rs: Pext hash.
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <immintrin.h>

static inline std::uint64_t load_u64_le(const char* p) {
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

// Fixed key length: 11 bytes; 2 fully unrolled load(s).
struct SsnPextHash {
    std::size_t operator()(const std::string& key) const {
        const char* ptr = key.c_str();
        const std::uint64_t h0 = _pext_u64(load_u64_le(ptr + 0), 0x0f000f0f000f0f0fULL);
        const std::uint64_t h1 = _pext_u64(load_u64_le(ptr + 3), 0x0f0f0f0000000000ULL);
        return h0 ^ (h1 << 52);
    }
};
";
    assert_eq!(code, expected);
}

#[test]
fn ipv4_offxor_rust_is_stable() {
    let code = emit_for(
        r"(([0-9]{3})\.){3}[0-9]{3}",
        Family::OffXor,
        Language::Rust,
        "ipv4_offxor",
    );
    let expected = "\
// Synthesized by sepe-rs: OffXor hash.
#[inline]
fn load_u64_le(key: &[u8], offset: usize) -> u64 {
    let mut buf = [0u8; 8];
    let end = key.len().min(offset + 8);
    if offset < end {
        buf[..end - offset].copy_from_slice(&key[offset..end]);
    }
    u64::from_le_bytes(buf)
}

/// Fixed key length: 15 bytes; 2 fully unrolled load(s).
pub fn ipv4_offxor(key: &[u8]) -> u64 {
    let h0 = load_u64_le(key, 0);
    let h1 = load_u64_le(key, 7).rotate_left(4);
    h0 ^ h1
}
";
    assert_eq!(code, expected);
}

#[test]
fn short_format_emits_the_fallback_functor() {
    let code = emit_for(r"\d{4}", Family::Pext, Language::Cpp, "ShortHash");
    assert!(code.contains("std::hash<std::string>{}(key)"));
    assert!(code.contains("struct ShortHash"));
}

#[test]
fn emitted_rust_for_every_format_has_balanced_braces() {
    use sepe::keygen::KeyFormat;
    for format in KeyFormat::EVALUATED {
        for family in Family::ALL {
            for lang in [Language::Cpp, Language::Rust] {
                let code = emit_for(&format.regex(), family, lang, "H");
                let open = code.matches('{').count();
                let close = code.matches('}').count();
                assert_eq!(open, close, "{format:?} {family} {lang:?}:\n{code}");
            }
        }
    }
}
