//! Round-trip tests for the optional `serde` feature: synthesized plans
//! and inferred patterns can be cached to disk (JSON here) and reloaded
//! into an identical, equally-behaving hash function.

use sepe_core::hash::{ByteHash, SynthesizedHash};
use sepe_core::pattern::KeyPattern;
use sepe_core::regex::Regex;
use sepe_core::synth::{synthesize, Family, Plan};
use sepe_core::Isa;

fn ssn_pattern() -> KeyPattern {
    Regex::compile(r"\d{3}-\d{2}-\d{4}").expect("ssn regex compiles")
}

#[test]
fn key_pattern_round_trips_through_json() {
    let pattern = ssn_pattern();
    let json = serde_json::to_string(&pattern).expect("serializes");
    let back: KeyPattern = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, pattern);
    assert!(back.matches(b"123-45-6789"));
}

#[test]
fn plans_round_trip_for_every_family_and_shape() {
    let shapes = [
        r"\d{3}-\d{2}-\d{4}",
        r"[0-9]{100}",
        r"[0-9]{16}([a-z]{4})?",
        r"\d{4}",
    ];
    for shape in shapes {
        let pattern = Regex::compile(shape).expect("regex compiles");
        for family in Family::ALL {
            let plan = synthesize(&pattern, family);
            let json = serde_json::to_string(&plan).expect("serializes");
            let back: Plan = serde_json::from_str(&json).expect("deserializes");
            assert_eq!(back, plan, "{shape} {family}");
        }
    }
}

#[test]
fn cached_plan_hashes_identically() {
    let pattern = ssn_pattern();
    let plan = synthesize(&pattern, Family::Pext);
    let json = serde_json::to_string(&plan).expect("serializes");

    // "A different process" reloads the plan and rebuilds the hash.
    let reloaded: Plan = serde_json::from_str(&json).expect("deserializes");
    let original = SynthesizedHash::new(plan, Family::Pext, Isa::Native);
    let restored = SynthesizedHash::new(reloaded, Family::Pext, Isa::Native);
    for i in 0..2000u32 {
        let key = format!("{:03}-{:02}-{:04}", i % 999, i % 97, i);
        assert_eq!(
            original.hash_bytes(key.as_bytes()),
            restored.hash_bytes(key.as_bytes())
        );
    }
}

#[test]
fn plan_json_is_stable_for_the_figure_12_example() {
    // A readable, reviewable representation of the SSN Pext plan.
    let plan = synthesize(
        &Regex::compile(r"\d{3}\.\d{2}\.\d{4}").expect("compiles"),
        Family::Pext,
    );
    let json = serde_json::to_value(&plan).expect("serializes");
    assert_eq!(json["FixedWords"]["len"], 11);
    assert_eq!(json["FixedWords"]["ops"][0]["offset"], 0);
    assert_eq!(json["FixedWords"]["ops"][1]["shift"], 52);
}
