//! The Pext bijection guarantee (Section 4.2: "Pext always generates a
//! bijection for key types that have equal or less than 64 relevant bits"),
//! verified exhaustively and against an independent reference interpreter.

use sepe::core::bits::{pdep_reference, pext_reference};
use sepe::core::hash::{ByteHash, SynthesizedHash};
use sepe::core::regex::Regex;
use sepe::core::synth::{synthesize, Family, Plan};
use sepe::keygen::KeyFormat;

/// An independent evaluator of fixed-word Pext plans, built on the
/// Figure 11 reference loop — deliberately sharing no code with the
/// production evaluator.
fn reference_pext_eval(plan: &Plan, key: &[u8]) -> u64 {
    let Plan::FixedWords { ops, .. } = plan else {
        panic!("reference evaluator expects a fixed-word plan, got {plan:?}");
    };
    let mut h = 0u64;
    for op in ops {
        let mut word = 0u64;
        for i in 0..8 {
            let b = key.get(op.offset as usize + i).copied().unwrap_or(0);
            word |= u64::from(b) << (8 * i);
        }
        h ^= pext_reference(word, op.mask) << op.shift;
    }
    h
}

#[test]
fn production_evaluator_matches_the_reference_interpreter() {
    for format in [
        KeyFormat::Ssn,
        KeyFormat::Cpf,
        KeyFormat::Ipv4,
        KeyFormat::Ints,
    ] {
        let pattern = Regex::compile(&format.regex()).expect("format regex compiles");
        let plan = synthesize(&pattern, Family::Pext);
        let hash = SynthesizedHash::from_pattern(&pattern, Family::Pext);
        for idx in (0..5000u128).step_by(37) {
            let key = format.materialize(idx * 1_000_003);
            assert_eq!(
                hash.hash_bytes(key.as_bytes()),
                reference_pext_eval(&plan, key.as_bytes()),
                "{format:?} key {key:?}"
            );
        }
    }
}

#[test]
fn ssn_pext_is_injective_on_a_large_sample() {
    let hash = SynthesizedHash::from_regex(&KeyFormat::Ssn.regex(), Family::Pext)
        .expect("ssn regex compiles");
    let mut hashes: Vec<u64> = (0..200_000u128)
        .map(|i| hash.hash_bytes(KeyFormat::Ssn.materialize(i * 4999).as_bytes()))
        .collect();
    hashes.sort_unstable();
    hashes.dedup();
    assert_eq!(hashes.len(), 200_000);
}

#[test]
fn sixteen_digit_pext_is_invertible() {
    // 64 relevant bits exactly: the hash is a bijection, so we can recover
    // the key from the hash with pdep.
    let pattern = Regex::compile(r"[0-9]{16}").expect("regex compiles");
    let plan = synthesize(&pattern, Family::Pext);
    let hash = SynthesizedHash::from_pattern(&pattern, Family::Pext);
    let Plan::FixedWords { ops, .. } = &plan else {
        panic!("fixed plan")
    };
    assert_eq!(ops.len(), 2);

    let key = b"9182736450192837";
    let h = hash.hash_bytes(key);
    // Invert: split h into the two extraction fields and deposit back.
    let bits1 = ops[1].mask.count_ones();
    let field0 = h & ((1u64 << ops[1].shift) - 1);
    let field1 = (h >> ops[1].shift) & ((1u64 << bits1) - 1);
    let w0 = pdep_reference(field0, ops[0].mask);
    let w1 = pdep_reference(field1, ops[1].mask);
    let mut recovered = [0u8; 16];
    for i in 0..8 {
        recovered[i] = ((w0 >> (8 * i)) & 0x0F) as u8 | 0x30;
        recovered[8 + i] = ((w1 >> (8 * i)) & 0x0F) as u8 | 0x30;
    }
    assert_eq!(&recovered, key);
}

#[test]
fn mac_pext_has_no_collisions_despite_96_variable_bits() {
    // MAC hex bytes join to fully-variable bytes (hex straddles the digit
    // and letter quad classes), so Pext cannot be a bijection — but like
    // the paper's INTS result, no collisions occur on realistic samples.
    let hash = SynthesizedHash::from_regex(&KeyFormat::Mac.regex(), Family::Pext)
        .expect("mac regex compiles");
    let mut hashes: Vec<u64> = (0..50_000u128)
        .map(|i| hash.hash_bytes(KeyFormat::Mac.materialize(i * 69_069).as_bytes()))
        .collect();
    hashes.sort_unstable();
    hashes.dedup();
    assert_eq!(hashes.len(), 50_000);
}

#[test]
fn forced_short_key_pext_matches_reference_too() {
    use sepe::core::synth::synthesize_unchecked;
    let pattern = Regex::compile(r"\d{4}").expect("regex compiles");
    let plan = synthesize_unchecked(&pattern, Family::Pext);
    let hash = SynthesizedHash::new(plan.clone(), Family::Pext, sepe::core::Isa::Native);
    for i in 0..10_000u128 {
        let key = KeyFormat::FourDigits.materialize(i);
        assert_eq!(
            hash.hash_bytes(key.as_bytes()),
            reference_pext_eval(&plan, key.as_bytes())
        );
    }
    // And it is a bijection on the full 4-digit space.
    let mut hashes: Vec<u64> = (0..10_000u128)
        .map(|i| hash.hash_bytes(KeyFormat::FourDigits.materialize(i).as_bytes()))
        .collect();
    hashes.sort_unstable();
    hashes.dedup();
    assert_eq!(hashes.len(), 10_000);
}
