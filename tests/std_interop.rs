//! Interop with `std::collections` through the `BuildHasher` adapter —
//! the Rust analog of dropping a SEPE functor into `std::unordered_map`
//! (Figure 5d).

use sepe::baselines::{CityHash, StlHash};
use sepe::core::hash::adapter::SepeBuildHasher;
use sepe::core::hash::SynthesizedHash;
use sepe::core::synth::Family;
use sepe::keygen::{Distribution, KeyFormat, KeySampler};
use std::collections::{HashMap, HashSet};

#[test]
fn std_hashmap_with_every_family() {
    for family in Family::ALL {
        let hash = SynthesizedHash::from_regex(&KeyFormat::Ssn.regex(), family)
            .expect("ssn regex compiles");
        let mut map: HashMap<String, usize, _> = HashMap::with_hasher(SepeBuildHasher::new(hash));
        let mut sampler = KeySampler::new(KeyFormat::Ssn, Distribution::Uniform, 31);
        let keys = sampler.distinct_pool(2000);
        for (i, k) in keys.iter().enumerate() {
            map.insert(k.clone(), i);
        }
        assert_eq!(map.len(), 2000, "{family}");
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(map.get(k.as_str()), Some(&i), "{family}");
        }
    }
}

#[test]
fn std_hashset_with_baseline_hashes() {
    let mut set: HashSet<String, _> = HashSet::with_hasher(SepeBuildHasher::new(CityHash::new()));
    for i in 0..1000 {
        set.insert(format!("key-{i}"));
    }
    assert_eq!(set.len(), 1000);
    assert!(set.contains("key-500"));

    let mut set2: HashSet<String, _> = HashSet::with_hasher(SepeBuildHasher::new(StlHash::new()));
    set2.extend(set.iter().cloned());
    assert_eq!(set2.len(), 1000);
}

#[test]
fn adapter_survives_rehashes() {
    let hash = SynthesizedHash::from_regex(&KeyFormat::Ipv4.regex(), Family::Pext)
        .expect("ipv4 regex compiles");
    let mut map: HashMap<String, u32, _> =
        HashMap::with_capacity_and_hasher(1, SepeBuildHasher::new(hash));
    for i in 0..50_000u32 {
        let key = format!(
            "{:03}.{:03}.{:03}.{:03}",
            i % 256,
            (i / 256) % 256,
            i % 199,
            i % 251
        );
        map.insert(key, i);
    }
    let expect: std::collections::BTreeSet<String> = (0..50_000u32)
        .map(|i| {
            format!(
                "{:03}.{:03}.{:03}.{:03}",
                i % 256,
                (i / 256) % 256,
                i % 199,
                i % 251
            )
        })
        .collect();
    assert_eq!(map.len(), expect.len());
    for k in expect {
        assert!(map.contains_key(k.as_str()));
    }
}
