//! Compile-and-run equivalence for the *C++* emitter — the paper's actual
//! deliverable. The emitted functor is compiled with `g++ -O2 -mbmi2 -maes`
//! (the paper's compiler and optimization level) and must produce exactly
//! the hash values of the runtime plan evaluator.
//!
//! Skipped gracefully when no `g++` is on PATH or the CPU lacks the
//! required instructions.

use sepe::core::codegen::{emit, Language};
use sepe::core::hash::{ByteHash, SynthesizedHash};
use sepe::core::regex::Regex;
use sepe::core::synth::{synthesize, Family, Plan};
use sepe::core::Isa;
use sepe::keygen::{Distribution, KeyFormat, KeySampler};
use std::process::Command;

fn gxx_available() -> bool {
    Command::new("g++")
        .arg("--version")
        .output()
        .is_ok_and(|o| o.status.success())
}

fn hardware_available(family: Family) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        match family {
            Family::Pext => std::arch::is_x86_feature_detected!("bmi2"),
            Family::Aes => std::arch::is_x86_feature_detected!("aes"),
            _ => true,
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = family;
        false
    }
}

fn compile_and_run_cpp(regex: &str, family: Family, keys: &[String]) -> Vec<u64> {
    let pattern = Regex::compile(regex).expect("test regex compiles");
    let plan = synthesize(&pattern, family);
    let functor = emit(&plan, family, Language::Cpp, "GeneratedHash");

    let program = format!(
        "{functor}\n\
         #include <iostream>\n\
         int main() {{\n    \
         GeneratedHash h;\n    \
         std::string line;\n    \
         while (std::getline(std::cin, line)) {{\n        \
         std::cout << h(line) << \"\\n\";\n    }}\n    \
         return 0;\n}}\n"
    );

    let dir = std::env::temp_dir().join(format!(
        "sepe-codegen-cpp-{}-{}",
        family.name().to_lowercase(),
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("temp dir creates");
    let src = dir.join("gen.cpp");
    let bin = dir.join("gen_bin");
    std::fs::write(&src, program).expect("source writes");

    // The paper's setup: g++, -O2. BMI2/AES intrinsics need their flags.
    let compile = Command::new("g++")
        .args(["-O2", "-std=c++17", "-mbmi2", "-maes", "-msse4.1", "-o"])
        .arg(&bin)
        .arg(&src)
        .output()
        .expect("g++ runs");
    assert!(
        compile.status.success(),
        "emitted C++ failed to compile:\n{}",
        String::from_utf8_lossy(&compile.stderr)
    );

    use std::io::Write as _;
    let mut child = Command::new(&bin)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("generated binary runs");
    {
        let stdin = child.stdin.as_mut().expect("stdin piped");
        for k in keys {
            writeln!(stdin, "{k}").expect("write key");
        }
    }
    let out = child.wait_with_output().expect("binary finishes");
    assert!(out.status.success());
    let hashes = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| l.parse().expect("decimal hash"))
        .collect();
    let _ = std::fs::remove_dir_all(&dir);
    hashes
}

fn check_cpp_equivalence(format: KeyFormat, family: Family) {
    if !gxx_available() {
        eprintln!("skipping: g++ not available");
        return;
    }
    if !hardware_available(family) {
        eprintln!("skipping {family}: required instructions unavailable");
        return;
    }
    let regex = format.regex();
    let mut sampler = KeySampler::new(format, Distribution::Uniform, 177);
    let keys = sampler.distinct_pool(200);
    let generated = compile_and_run_cpp(&regex, family, &keys);
    let hash = SynthesizedHash::from_regex(&regex, family)
        .expect("format regex compiles")
        .with_isa(Isa::Native);
    for (k, &g) in keys.iter().zip(&generated) {
        assert_eq!(
            hash.hash_bytes(k.as_bytes()),
            g,
            "{format:?} {family}: plan and generated C++ disagree on {k:?}"
        );
    }
}

#[test]
fn emitted_cpp_offxor_matches_plan() {
    check_cpp_equivalence(KeyFormat::Ipv4, Family::OffXor);
    check_cpp_equivalence(KeyFormat::Url2, Family::OffXor);
}

#[test]
fn emitted_cpp_naive_matches_plan() {
    check_cpp_equivalence(KeyFormat::Mac, Family::Naive);
}

#[test]
fn emitted_cpp_pext_matches_plan() {
    check_cpp_equivalence(KeyFormat::Ssn, Family::Pext);
    check_cpp_equivalence(KeyFormat::Cpf, Family::Pext);
    check_cpp_equivalence(KeyFormat::Ints, Family::Pext);
}

#[test]
fn emitted_cpp_aes_matches_plan() {
    check_cpp_equivalence(KeyFormat::Ipv6, Family::Aes);
    check_cpp_equivalence(KeyFormat::Ssn, Family::Aes);
}

#[test]
fn emitted_dispatch_cpp_matches_the_length_dispatch_hash() {
    use sepe::core::codegen::emit_dispatch_cpp;
    use sepe::core::multi::LengthDispatchHash;

    if !gxx_available() {
        eprintln!("skipping: g++ not available");
        return;
    }
    let examples: [&[u8]; 6] = [
        b"code=JFK",
        b"code=GRU",
        b"code=LAX",
        b"code=EGLL",
        b"code=SBGR",
        b"code=KDEN",
    ];
    let runtime = LengthDispatchHash::from_examples(examples.iter().copied(), Family::OffXor)
        .expect("examples are non-empty");

    let strata: Vec<(usize, &Plan)> = runtime.strata().map(|(len, h)| (len, h.plan())).collect();
    let functor = emit_dispatch_cpp(
        &strata,
        runtime.fallback().plan(),
        Family::OffXor,
        "AirportHash",
    );

    let program = format!(
        "{functor}\n\
         #include <iostream>\n\
         int main() {{\n    \
         AirportHash h;\n    \
         std::string line;\n    \
         while (std::getline(std::cin, line)) {{\n        \
         std::cout << h(line) << \"\\n\";\n    }}\n    \
         return 0;\n}}\n"
    );
    let dir = std::env::temp_dir().join(format!("sepe-dispatch-cpp-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir creates");
    let src = dir.join("gen.cpp");
    let bin = dir.join("gen_bin");
    std::fs::write(&src, program).expect("source writes");
    let compile = Command::new("g++")
        .args(["-O2", "-std=c++17", "-o"])
        .arg(&bin)
        .arg(&src)
        .output()
        .expect("g++ runs");
    assert!(
        compile.status.success(),
        "dispatch code failed to compile:\n{}",
        String::from_utf8_lossy(&compile.stderr)
    );

    // Keys from both strata plus an unseen length (fallback path).
    let keys = [
        "code=AAA",
        "code=ZZZ",
        "code=ABCD",
        "code=WXYZ",
        "code=FIVEE",
    ];
    use std::io::Write as _;
    let mut child = Command::new(&bin)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("binary runs");
    {
        let stdin = child.stdin.as_mut().expect("stdin piped");
        for k in keys {
            writeln!(stdin, "{k}").expect("write key");
        }
    }
    let out = child.wait_with_output().expect("binary finishes");
    assert!(out.status.success());
    let produced: Vec<u64> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| l.parse().expect("decimal hash"))
        .collect();
    let _ = std::fs::remove_dir_all(&dir);

    use sepe::core::ByteHash;
    for (k, &g) in keys.iter().zip(&produced) {
        assert_eq!(runtime.hash_bytes(k.as_bytes()), g, "disagree on {k:?}");
    }
}

#[test]
fn emitted_skip_table_cpp_matches_the_plan() {
    // A variable-length format whose prefix needs more than eight loads:
    // the emitter switches to the Figure 8 skip-table walk, which must
    // still agree with the runtime plan on both key lengths.
    if !gxx_available() {
        eprintln!("skipping: g++ not available");
        return;
    }
    let regex = r"[0-9]{80}([a-z]{8})?";
    let keys: Vec<String> = (0..100)
        .map(|i: u64| {
            let digits = format!("{:080}", i * 1_000_003);
            if i.is_multiple_of(2) {
                digits
            } else {
                format!("{digits}{}", "qwertyui")
            }
        })
        .collect();
    let generated = compile_and_run_cpp(regex, Family::OffXor, &keys);
    let hash = SynthesizedHash::from_regex(regex, Family::OffXor).expect("regex compiles");
    for (k, &g) in keys.iter().zip(&generated) {
        assert_eq!(
            hash.hash_bytes(k.as_bytes()),
            g,
            "skip-table disagrees on {k:?}"
        );
    }
}
