//! API-guideline conformance checks that are worth enforcing in CI:
//! public types are `Send`/`Sync` (C-SEND-SYNC), implement `Debug`
//! (C-DEBUG) with non-empty output (C-DEBUG-NONEMPTY), and `Clone` where
//! users will share them across threads.

use sepe::baselines::{AbseilHash, CityHash, FnvHash, GperfHash, GptHash, StlHash};
use sepe::containers::{DirectMap, UnorderedMap, UnorderedMultiMap};
use sepe::core::hash::SynthesizedHash;
use sepe::core::multi::LengthDispatchHash;
use sepe::core::pattern::{BytePattern, KeyPattern};
use sepe::core::synth::{Family, Plan};
use sepe::driver::{ExperimentConfig, HashId, Measurement};
use sepe::keygen::{KeyFormat, KeySampler};
use sepe::stats::{BoxplotSummary, Chi2Result, MannWhitneyResult};

fn assert_send_sync<T: Send + Sync>() {}
fn assert_clone<T: Clone>() {}

#[test]
fn core_types_are_send_sync_and_clone() {
    assert_send_sync::<SynthesizedHash>();
    assert_send_sync::<LengthDispatchHash>();
    assert_send_sync::<KeyPattern>();
    assert_send_sync::<BytePattern>();
    assert_send_sync::<Plan>();
    assert_clone::<SynthesizedHash>();
    assert_clone::<KeyPattern>();
    assert_clone::<Plan>();
}

#[test]
fn baseline_types_are_send_sync() {
    assert_send_sync::<StlHash>();
    assert_send_sync::<FnvHash>();
    assert_send_sync::<CityHash>();
    assert_send_sync::<AbseilHash>();
    assert_send_sync::<GperfHash>();
    assert_send_sync::<GptHash>();
}

#[test]
fn containers_are_send_sync_with_send_sync_hashers() {
    assert_send_sync::<UnorderedMap<String, u32, StlHash>>();
    assert_send_sync::<UnorderedMultiMap<String, u32, SynthesizedHash>>();
    assert_send_sync::<DirectMap<u32>>();
}

#[test]
fn driver_and_stats_types_are_send_sync() {
    assert_send_sync::<HashId>();
    assert_send_sync::<ExperimentConfig>();
    assert_send_sync::<Measurement>();
    assert_send_sync::<KeyFormat>();
    assert_send_sync::<KeySampler>();
    assert_send_sync::<BoxplotSummary>();
    assert_send_sync::<Chi2Result>();
    assert_send_sync::<MannWhitneyResult>();
}

#[test]
fn debug_representations_are_non_empty() {
    let hash = SynthesizedHash::from_regex(r"\d{3}-\d{2}-\d{4}", Family::Pext)
        .expect("ssn regex compiles");
    assert!(!format!("{hash:?}").is_empty());
    assert!(!format!("{:?}", BytePattern::ANY).is_empty());
    assert!(!format!("{:?}", HashId::Pext).is_empty());
    assert!(!format!("{:?}", KeyFormat::Ssn).is_empty());
}

#[test]
fn hashes_can_be_shared_across_threads() {
    use sepe::core::ByteHash;
    let hash = std::sync::Arc::new(
        SynthesizedHash::from_regex(r"(([0-9]{3})\.){3}[0-9]{3}", Family::Pext)
            .expect("ipv4 regex compiles"),
    );
    let expected = hash.hash_bytes(b"123.456.789.012");
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let h = std::sync::Arc::clone(&hash);
            std::thread::spawn(move || h.hash_bytes(b"123.456.789.012"))
        })
        .collect();
    for handle in handles {
        assert_eq!(handle.join().expect("thread joins"), expected);
    }
}
