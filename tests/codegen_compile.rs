//! Compile-and-run equivalence: the Rust source emitted by the code
//! generator is compiled with `rustc` and must produce exactly the same
//! hash values as the runtime plan evaluator. This is the evidence that
//! the interpreted plans measured throughout the evaluation are a faithful
//! stand-in for the generated code (DESIGN.md's substitution argument).

use sepe::core::codegen::{emit, Language};
use sepe::core::hash::{ByteHash, SynthesizedHash};
use sepe::core::regex::Regex;
use sepe::core::synth::{synthesize, Family};
use sepe::core::Isa;
use sepe::keygen::{Distribution, KeyFormat, KeySampler};
use std::process::Command;

fn hardware_available(family: Family) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        match family {
            Family::Pext => std::arch::is_x86_feature_detected!("bmi2"),
            Family::Aes => std::arch::is_x86_feature_detected!("aes"),
            _ => true,
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = family;
        false
    }
}

/// Emits the hash, wraps it in a main() that hashes stdin lines, compiles
/// with rustc, runs it over `keys`, and returns the printed hashes.
fn compile_and_run(regex: &str, family: Family, keys: &[String]) -> Option<Vec<u64>> {
    let pattern = Regex::compile(regex).expect("test regex compiles");
    let plan = synthesize(&pattern, family);
    let code = emit(&plan, family, Language::Rust, "generated_hash");

    let program = format!(
        "{code}\n\
         fn main() {{\n    \
         use std::io::BufRead;\n    \
         let stdin = std::io::stdin();\n    \
         for line in stdin.lock().lines() {{\n        \
         let line = line.unwrap();\n        \
         println!(\"{{}}\", generated_hash(line.as_bytes()));\n    }}\n}}\n"
    );

    let dir = std::env::temp_dir().join(format!(
        "sepe-codegen-test-{}-{}",
        family.name().to_lowercase(),
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("temp dir creates");
    let src = dir.join("gen.rs");
    let bin = dir.join("gen_bin");
    std::fs::write(&src, program).expect("source writes");

    let compile = Command::new("rustc")
        .args(["-O", "--edition", "2021", "-o"])
        .arg(&bin)
        .arg(&src)
        .output()
        .expect("rustc runs");
    assert!(
        compile.status.success(),
        "emitted code failed to compile:\n{}",
        String::from_utf8_lossy(&compile.stderr)
    );

    use std::io::Write as _;
    let mut child = Command::new(&bin)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("generated binary runs");
    {
        let stdin = child.stdin.as_mut().expect("stdin piped");
        for k in keys {
            writeln!(stdin, "{k}").expect("write key");
        }
    }
    let out = child.wait_with_output().expect("binary finishes");
    assert!(out.status.success());
    let hashes = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| l.parse().expect("decimal hash"))
        .collect();
    let _ = std::fs::remove_dir_all(&dir);
    Some(hashes)
}

fn check_equivalence(format: KeyFormat, family: Family) {
    if !hardware_available(family) {
        eprintln!("skipping {family}: required instructions unavailable");
        return;
    }
    let regex = format.regex();
    let mut sampler = KeySampler::new(format, Distribution::Uniform, 77);
    let keys = sampler.distinct_pool(200);
    let Some(generated) = compile_and_run(&regex, family, &keys) else {
        return;
    };
    let hash = SynthesizedHash::from_regex(&regex, family)
        .expect("format regex compiles")
        .with_isa(Isa::Native);
    for (k, &g) in keys.iter().zip(&generated) {
        assert_eq!(
            hash.hash_bytes(k.as_bytes()),
            g,
            "{format:?} {family}: plan and generated code disagree on {k:?}"
        );
    }
}

#[test]
fn emitted_offxor_matches_plan_evaluation() {
    check_equivalence(KeyFormat::Ipv4, Family::OffXor);
}

#[test]
fn emitted_naive_matches_plan_evaluation() {
    check_equivalence(KeyFormat::Url1, Family::Naive);
}

#[test]
fn emitted_pext_matches_plan_evaluation() {
    check_equivalence(KeyFormat::Ssn, Family::Pext);
    check_equivalence(KeyFormat::Ints, Family::Pext);
}

#[test]
fn emitted_aes_matches_plan_evaluation() {
    check_equivalence(KeyFormat::Ipv6, Family::Aes); // multi-block
    check_equivalence(KeyFormat::Ssn, Family::Aes); // replicated block
}
