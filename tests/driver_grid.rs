//! Integration smoke of the experiment driver: a reduced grid runs end to
//! end for every hash function, and the headline qualitative results of the
//! paper hold at small scale.

use sepe::containers::BucketPolicy;
use sepe::core::Isa;
use sepe::driver::analysis::{low_mixing_point, run_grid, uniformity_chi2, RunScale};
use sepe::driver::measure::count_collisions;
use sepe::driver::{run_experiment, ExperimentConfig, HashId};
use sepe::keygen::{Distribution, KeyFormat};

fn tiny() -> RunScale {
    RunScale {
        affectations: 400,
        samples: 1,
        formats: vec![KeyFormat::Ssn],
        collision_keys: 1000,
        uniformity_keys: 5000,
        isa: Isa::Native,
    }
}

#[test]
fn the_full_grid_runs_for_every_hash() {
    for id in HashId::ALL {
        let agg = run_grid(id, &tiny(), None);
        assert_eq!(agg.b_times_ms.len(), 144, "{id}");
        assert!(agg.b_time_geomean() > 0.0, "{id}");
    }
}

#[test]
fn run_experiment_is_reproducible_in_collisions() {
    let cfg = ExperimentConfig::quick(KeyFormat::Ipv4, Distribution::Uniform);
    let hash = HashId::Pext.build(cfg.format, Isa::Native);
    let a = run_experiment(&cfg, hash.as_ref());
    let b = run_experiment(&cfg, hash.as_ref());
    assert_eq!(a.bucket_collisions, b.bucket_collisions);
    assert_eq!(a.true_collisions, b.true_collisions);
}

#[test]
fn pext_collision_free_across_all_formats() {
    // Section 4.2: Pext reached zero true collisions for every key type.
    for format in KeyFormat::EVALUATED {
        let hash = HashId::Pext.build(format, Isa::Native);
        let (_, t_coll) = count_collisions(
            format,
            Distribution::Uniform,
            hash.as_ref(),
            BucketPolicy::Modulo,
            3000,
            9,
        );
        assert_eq!(t_coll, 0, "{format:?}");
    }
}

#[test]
fn bucket_collisions_are_comparable_across_good_hashes() {
    // RQ2: no meaningful B-Coll difference between synthesized and STL
    // under modulo indexing; gperf is the outlier.
    let format = KeyFormat::Ssn;
    let count = |id: HashId| {
        let hash = id.build(format, Isa::Native);
        count_collisions(
            format,
            Distribution::Normal,
            hash.as_ref(),
            BucketPolicy::Modulo,
            5000,
            4,
        )
        .0 as f64
    };
    let stl = count(HashId::Stl);
    for id in [HashId::Naive, HashId::OffXor, HashId::Pext, HashId::Aes] {
        let c = count(id);
        assert!(
            (c / stl - 1.0).abs() < 0.25,
            "{id}: {c} vs STL {stl} differs by more than 25%"
        );
    }
    let gperf = count(HashId::Gperf);
    assert!(gperf > stl * 1.5, "gperf {gperf} should stand out vs {stl}");
}

#[test]
fn uniformity_ordering_matches_table_2() {
    // STL/City/Abseil/FNV uniform; synthetic families heavily skewed.
    let format = KeyFormat::Cpf;
    let chi = |id: HashId| {
        let hash = id.build(format, Isa::Native);
        uniformity_chi2(hash.as_ref(), format, Distribution::Uniform, 30_000, 512, 3)
    };
    let stl = chi(HashId::Stl);
    for id in [HashId::City, HashId::Abseil] {
        let c = chi(id);
        assert!(c < stl * 3.0, "{id} chi2 {c} vs stl {stl}");
    }
    for id in [HashId::Naive, HashId::OffXor] {
        let c = chi(id);
        assert!(c > stl * 20.0, "{id} chi2 {c} should dwarf stl {stl}");
    }
}

#[test]
fn low_mixing_containers_break_naive_and_offxor_but_not_aes() {
    // RQ7 (Figures 17/18): with 48 discarded bits, Naive/OffXor collapse;
    // Aes resists; STL is unaffected.
    let format = KeyFormat::Ssn;
    let point = |id: HashId| {
        let hash = id.build(format, Isa::Native);
        low_mixing_point(hash.as_ref(), format, 48, 4000, 21)
    };
    let (_, stl_tc) = point(HashId::Stl);
    let (_, off_tc) = point(HashId::OffXor);
    let (_, naive_tc) = point(HashId::Naive);
    let (_, aes_tc) = point(HashId::Aes);
    assert!(
        off_tc > stl_tc.max(1) * 10,
        "OffXor {off_tc} vs STL {stl_tc}"
    );
    assert!(
        naive_tc > stl_tc.max(1) * 10,
        "Naive {naive_tc} vs STL {stl_tc}"
    );
    // "Greater resistance" is relative: the paper itself reports Pext at
    // 7.1x the STL collisions under low mixing. Aes must sit well below
    // the xor families, not at the STL baseline.
    assert!(
        aes_tc < off_tc / 3,
        "Aes {aes_tc} should resist vs OffXor {off_tc}"
    );
}

#[test]
fn portable_isa_grid_runs_without_pext_hardware() {
    // RQ4's configuration: everything still works on the software paths.
    let mut scale = tiny();
    scale.isa = Isa::Portable;
    for id in [HashId::Naive, HashId::OffXor, HashId::Aes] {
        let agg = run_grid(id, &scale, Some(Distribution::Uniform));
        assert!(agg.b_time_geomean() > 0.0, "{id}");
    }
}
