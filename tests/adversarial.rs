//! Adversarial collisions — why SEPE functions are only for settings
//! "where an adversary is not expected to force collisions" (Section 1).
//!
//! The xor-combining families are *linear*: flipping the same bit in two
//! bytes that land at the same position of two different loads cancels
//! exactly. These tests construct such collisions deterministically, and
//! show the general-purpose baselines resist the same manipulation.

use sepe::baselines::{CityHash, StlHash};
use sepe::core::hash::{ByteHash, SynthesizedHash};
use sepe::core::synth::{Family, Plan};
use sepe::keygen::KeyFormat;

/// Builds a pair of distinct 15-byte keys that collide under the IPv4
/// OffXor plan (loads at offsets 0 and 7, the second rotated left by 4 for
/// being clamped): the rotation stops *in-format* differences from
/// cancelling, but the combination stays linear over GF(2), so an adversary
/// free to flip arbitrary bits simply pre-rotates the second flip — bit 4
/// of byte `i` (lane `i` of load 0) cancels against bit 0 of byte `i + 8`
/// (lane `i + 1` of load 1, rotated onto the same position).
fn forged_ipv4_pair() -> (Vec<u8>, Vec<u8>) {
    let base = b"000.000.000.000".to_vec();
    let mut forged = base.clone();
    forged[1] ^= 0x10; // '0' -> ' ' — bit 12 of load 0
    forged[8] ^= 0x01; // '0' -> '1' — bit 8 of load 1, bit 12 after rotation
    (base, forged)
}

#[test]
fn offxor_collides_on_the_forged_pair() {
    let hash = SynthesizedHash::from_regex(&KeyFormat::Ipv4.regex(), Family::OffXor)
        .expect("ipv4 regex compiles");
    // Confirm the plan shape the forgery assumes.
    let Plan::FixedWords { ops, .. } = hash.plan() else {
        panic!("fixed plan")
    };
    assert_eq!(ops.iter().map(|o| o.offset).collect::<Vec<_>>(), vec![0, 7]);

    let (a, b) = forged_ipv4_pair();
    assert_ne!(a, b);
    assert_eq!(
        hash.hash_bytes(&a),
        hash.hash_bytes(&b),
        "linearity lets an adversary cancel the two loads"
    );
}

#[test]
fn naive_collides_on_the_same_pair() {
    let hash = SynthesizedHash::from_regex(&KeyFormat::Ipv4.regex(), Family::Naive)
        .expect("ipv4 regex compiles");
    let (a, b) = forged_ipv4_pair();
    // Naive loads at 0 and 7 too (15-byte key): same cancellation.
    assert_eq!(hash.hash_bytes(&a), hash.hash_bytes(&b));
}

#[test]
fn general_purpose_hashes_resist_the_forgery() {
    let (a, b) = forged_ipv4_pair();
    assert_ne!(StlHash::new().hash_bytes(&a), StlHash::new().hash_bytes(&b));
    assert_ne!(
        CityHash::new().hash_bytes(&a),
        CityHash::new().hash_bytes(&b)
    );
}

#[test]
fn aes_family_resists_the_xor_forgery() {
    // The AES round's SubBytes breaks linearity: the same trick fails.
    let hash = SynthesizedHash::from_regex(&KeyFormat::Ipv4.regex(), Family::Aes)
        .expect("ipv4 regex compiles");
    let (a, b) = forged_ipv4_pair();
    assert_ne!(hash.hash_bytes(&a), hash.hash_bytes(&b));
}

#[test]
fn pext_resists_this_particular_forgery_but_not_in_format_ones() {
    let hash = SynthesizedHash::from_regex(&KeyFormat::Ipv4.regex(), Family::Pext)
        .expect("ipv4 regex compiles");
    let (a, b) = forged_ipv4_pair();
    // The flipped separator bit is masked out, but the digit bit is kept:
    // the pair no longer cancels.
    assert_ne!(hash.hash_bytes(&a), hash.hash_bytes(&b));

    // Within the format, Pext on IPv4 is a 48-bit bijection: no forgery
    // with format-conforming keys exists at all.
    assert_eq!(hash.plan().bijection_bits(), Some(48));
}

#[test]
fn forged_keys_flood_one_bucket() {
    // The practical attack: many distinct keys, one hash value, one bucket.
    use sepe::containers::UnorderedMap;
    let hash = SynthesizedHash::from_regex(&KeyFormat::Ipv4.regex(), Family::OffXor)
        .expect("ipv4 regex compiles");
    let mut keys: Vec<Vec<u8>> = Vec::new();
    let base = b"000.000.000.000".to_vec();
    // Flip rotation-compensated bit pairs across bytes 1..=6 in all
    // combinations: bit 4 of byte `p` cancels bit 0 of byte `p + 7` once
    // the clamped load's rotation is accounted for (byte 7 sits in *both*
    // overlapping loads, so byte 0's pair — which lands there — is
    // unusable).
    for mask in 0..64u32 {
        let mut k = base.clone();
        for bit in 0..6 {
            if (mask >> bit) & 1 == 1 {
                let p = bit + 1;
                k[p] ^= 0x10;
                k[p + 7] ^= 0x01;
            }
        }
        keys.push(k);
    }
    keys.sort();
    keys.dedup();
    assert_eq!(keys.len(), 64);

    let h0 = hash.hash_bytes(&keys[0]);
    assert!(
        keys.iter().all(|k| hash.hash_bytes(k) == h0),
        "all forged keys collide"
    );

    let mut map = UnorderedMap::with_hasher(hash);
    for (i, k) in keys.iter().enumerate() {
        map.insert(String::from_utf8_lossy(k).into_owned(), i);
    }
    assert_eq!(map.len(), 64);
    assert_eq!(map.bucket_collisions(), 63, "all 64 keys share one bucket");
}
