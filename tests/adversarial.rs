//! Adversarial collisions — why SEPE functions are only for settings
//! "where an adversary is not expected to force collisions" (Section 1).
//!
//! The xor-combining families are *linear*: flipping the same bit in two
//! bytes that land at the same position of two different loads cancels
//! exactly. The forged keys themselves are built by
//! [`sepe::verify::attacker`] (shared with the `sepe-verify` adversarial
//! chaos suite, which drives the escalation-ladder *defense* against
//! them); these tests pin the plan shapes the forgeries assume and show
//! the general-purpose baselines resist the same manipulation.

use sepe::baselines::{CityHash, StlHash};
use sepe::core::hash::{ByteHash, SynthesizedHash};
use sepe::core::synth::{Family, Plan};
use sepe::keygen::KeyFormat;
use sepe::verify::attacker::{forged_ipv4_pair, offxor_flood_keys};

#[test]
fn offxor_collides_on_the_forged_pair() {
    let hash = SynthesizedHash::from_regex(&KeyFormat::Ipv4.regex(), Family::OffXor)
        .expect("ipv4 regex compiles");
    // Confirm the plan shape the forgery assumes.
    let Plan::FixedWords { ops, .. } = hash.plan() else {
        panic!("fixed plan")
    };
    assert_eq!(ops.iter().map(|o| o.offset).collect::<Vec<_>>(), vec![0, 7]);

    let (a, b) = forged_ipv4_pair();
    assert_ne!(a, b);
    assert_eq!(
        hash.hash_bytes(&a),
        hash.hash_bytes(&b),
        "linearity lets an adversary cancel the two loads"
    );
}

#[test]
fn naive_collides_on_the_same_pair() {
    let hash = SynthesizedHash::from_regex(&KeyFormat::Ipv4.regex(), Family::Naive)
        .expect("ipv4 regex compiles");
    let (a, b) = forged_ipv4_pair();
    // Naive loads at 0 and 7 too (15-byte key): same cancellation.
    assert_eq!(hash.hash_bytes(&a), hash.hash_bytes(&b));
}

#[test]
fn general_purpose_hashes_resist_the_forgery() {
    let (a, b) = forged_ipv4_pair();
    assert_ne!(StlHash::new().hash_bytes(&a), StlHash::new().hash_bytes(&b));
    assert_ne!(
        CityHash::new().hash_bytes(&a),
        CityHash::new().hash_bytes(&b)
    );
}

#[test]
fn aes_family_resists_the_xor_forgery() {
    // The AES round's SubBytes breaks linearity: the same trick fails.
    let hash = SynthesizedHash::from_regex(&KeyFormat::Ipv4.regex(), Family::Aes)
        .expect("ipv4 regex compiles");
    let (a, b) = forged_ipv4_pair();
    assert_ne!(hash.hash_bytes(&a), hash.hash_bytes(&b));
}

#[test]
fn pext_resists_this_particular_forgery_but_not_in_format_ones() {
    let hash = SynthesizedHash::from_regex(&KeyFormat::Ipv4.regex(), Family::Pext)
        .expect("ipv4 regex compiles");
    let (a, b) = forged_ipv4_pair();
    // The flipped separator bit is masked out, but the digit bit is kept:
    // the pair no longer cancels.
    assert_ne!(hash.hash_bytes(&a), hash.hash_bytes(&b));

    // Within the format, Pext on IPv4 is a 48-bit bijection: no forgery
    // with format-conforming keys exists at all.
    assert_eq!(hash.plan().bijection_bits(), Some(48));
}

#[test]
fn forged_keys_flood_one_bucket() {
    // The practical attack: many distinct keys, one hash value, one bucket.
    use sepe::containers::UnorderedMap;
    let hash = SynthesizedHash::from_regex(&KeyFormat::Ipv4.regex(), Family::OffXor)
        .expect("ipv4 regex compiles");
    let keys = offxor_flood_keys();
    assert_eq!(keys.len(), 64);

    let h0 = hash.hash_bytes(&keys[0]);
    assert!(
        keys.iter().all(|k| hash.hash_bytes(k) == h0),
        "all forged keys collide"
    );

    let mut map = UnorderedMap::with_hasher(hash);
    for (i, k) in keys.iter().enumerate() {
        map.insert(String::from_utf8_lossy(k).into_owned(), i);
    }
    assert_eq!(map.len(), 64);
    assert_eq!(map.bucket_collisions(), 63, "all 64 keys share one bucket");
}
