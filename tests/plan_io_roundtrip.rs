//! Round-trip tests for plan/pattern serialization: synthesized plans and
//! inferred patterns can be cached to disk (JSON) and reloaded into an
//! identical, equally-behaving hash function.

use sepe_core::hash::{ByteHash, SynthesizedHash};
use sepe_core::pattern::KeyPattern;
use sepe_core::plan_io;
use sepe_core::regex::Regex;
use sepe_core::synth::{synthesize, Family};
use sepe_core::Isa;

fn ssn_pattern() -> KeyPattern {
    Regex::compile(r"\d{3}-\d{2}-\d{4}").expect("ssn regex compiles")
}

#[test]
fn key_pattern_round_trips_through_json() {
    let pattern = ssn_pattern();
    let json = plan_io::key_pattern_to_string(&pattern);
    let back = plan_io::key_pattern_from_str(&json).expect("deserializes");
    assert_eq!(back, pattern);
    assert!(back.matches(b"123-45-6789"));
}

#[test]
fn plans_round_trip_for_every_family_and_shape() {
    let shapes = [
        r"\d{3}-\d{2}-\d{4}",
        r"[0-9]{100}",
        r"[0-9]{16}([a-z]{4})?",
        r"\d{4}",
    ];
    for shape in shapes {
        let pattern = Regex::compile(shape).expect("regex compiles");
        for family in Family::ALL {
            let plan = synthesize(&pattern, family);
            let json = plan_io::plan_to_string(&plan);
            let back = plan_io::plan_from_str(&json).expect("deserializes");
            assert_eq!(back, plan, "{shape} {family}");
        }
    }
}

#[test]
fn cached_plan_hashes_identically() {
    let pattern = ssn_pattern();
    let plan = synthesize(&pattern, Family::Pext);
    let json = plan_io::plan_to_string(&plan);

    // "A different process" reloads the plan and rebuilds the hash.
    let reloaded = plan_io::plan_from_str(&json).expect("deserializes");
    let original = SynthesizedHash::new(plan, Family::Pext, Isa::Native);
    let restored = SynthesizedHash::new(reloaded, Family::Pext, Isa::Native);
    for i in 0..2000u32 {
        let key = format!("{:03}-{:02}-{:04}", i % 999, i % 97, i);
        assert_eq!(
            original.hash_bytes(key.as_bytes()),
            restored.hash_bytes(key.as_bytes())
        );
    }
}

#[test]
fn plan_json_is_stable_for_the_figure_12_example() {
    // A readable, reviewable representation of the SSN Pext plan.
    let plan = synthesize(
        &Regex::compile(r"\d{3}\.\d{2}\.\d{4}").expect("compiles"),
        Family::Pext,
    );
    let json = plan_io::plan_to_json(&plan);
    let words = json.get("FixedWords");
    assert_eq!(words.get("len").as_u64(), Some(11));
    assert_eq!(words.get("ops").at(0).get("offset").as_u64(), Some(0));
    assert_eq!(words.get("ops").at(1).get("shift").as_u64(), Some(52));
}
